"""The continuous-rebalance experiment (``repro rebalance``).

One short seeded run is shared by the whole module (a 12-tenant /
3-node fleet through two hotspot phases); the tests assert the control
plane's structural invariants, the BENCH_rebalance.json schema,
byte-determinism across same-seed runs, the ``check_bench.py`` /
``check_trace.py`` gates, and the CLI wiring (including the
``--list-scenarios`` flags).
"""

import argparse
import importlib.util
import json
import os

import pytest

from repro.cli import main as cli_main
from repro.experiments import bench, chaos, rebalance
from repro.experiments.profiles import get_profile

SEED = 7
TENANTS = 12
NODES = 3
PHASES = 2
PHASE_SECONDS = 60.0


def _load_script(name):
    path = os.path.join(os.path.dirname(__file__), os.pardir,
                        "scripts", "%s.py" % name)
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _run(directory):
    return rebalance.run_rebalance(
        get_profile("quick"), seed=SEED, tenants=TENANTS, nodes=NODES,
        phases=PHASES, phase_seconds=PHASE_SECONDS,
        trace_dir=directory, bench_dir=directory)


@pytest.fixture(scope="module")
def rebalance_run(tmp_path_factory):
    return _run(str(tmp_path_factory.mktemp("rebalance")))


class TestInvariants:
    def test_every_phase_converges(self, rebalance_run):
        outcome = rebalance_run.data
        assert len(outcome.phases) == PHASES
        for phase in outcome.phases:
            assert (phase["imbalance_after"]
                    < phase["imbalance_before"])
        assert outcome.converged

    def test_moves_were_issued_and_settled_ok(self, rebalance_run):
        outcome = rebalance_run.data
        assert outcome.moves_submitted >= 1
        assert outcome.moves_ok == outcome.moves_submitted
        assert outcome.moves_failed == 0
        for move in outcome.moves:
            assert move["outcome"] == "ok"
            assert move["source"] != move["destination"]
            assert move["observed_cost"] > 0

    def test_nothing_lost_and_ownership_intact(self, rebalance_run):
        outcome = rebalance_run.data
        assert outcome.lost_commits == 0
        assert outcome.value_mismatches == 0
        assert outcome.owner_violations == []
        assert outcome.committed_txns > 0

    def test_no_tenant_moved_twice_within_a_cooldown(self,
                                                     rebalance_run):
        outcome = rebalance_run.data
        assert outcome.cooldown_violations == 0
        assert outcome.ok

    def test_cost_model_predictions_are_sane(self, rebalance_run):
        outcome = rebalance_run.data
        # Predictions land within the same order of magnitude as the
        # observed migration times (relative bound, never absolute).
        assert 0.0 <= outcome.mean_cost_error < 1.0


class TestValidation:
    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            rebalance.run_rebalance(get_profile("quick"), tenants=4,
                                    nodes=2)

    def test_fewer_tenants_than_nodes_rejected(self):
        with pytest.raises(ValueError):
            rebalance.run_rebalance(get_profile("quick"), tenants=2,
                                    nodes=3)

    def test_zero_phases_rejected(self):
        with pytest.raises(ValueError):
            rebalance.run_rebalance(get_profile("quick"), tenants=6,
                                    nodes=3, phases=0)


class TestArtifacts:
    def test_bench_artifact_matches_schema(self, rebalance_run):
        with open(rebalance_run.data.report_path) as handle:
            record = json.load(handle)
        assert record["bench"] == "rebalance"
        assert record["seed"] == SEED
        assert record["tenants"] == TENANTS
        assert record["nodes"] == NODES
        assert len(record["cases"]) == PHASES
        for phase in record["cases"]:
            for field in ("phase", "hot_node", "started", "ended",
                          "imbalance_before", "imbalance_after",
                          "moves_submitted", "moves_ok"):
                assert field in phase
        for move in record["moves"]:
            for field in ("tenant", "source", "destination",
                          "decided_at", "outcome", "attempts",
                          "predicted_cost", "observed_cost"):
                assert field in move
        summary = record["summary"]
        assert summary["ok"] is True
        assert summary["converged"] is True
        assert summary["moves_submitted"] == len(record["moves"])

    def test_trace_records_the_control_plane(self, rebalance_run):
        decides = submits = settles = phases = 0
        with open(rebalance_run.data.trace_path) as handle:
            for line in handle:
                record = json.loads(line)
                name = record.get("name")
                if name == "rebalance.decide":
                    decides += 1
                elif name == "rebalance.submit":
                    submits += 1
                elif name == "rebalance.settle":
                    settles += 1
                elif name == "rebalance.phase":
                    phases += 1
        assert decides >= 1
        assert submits == rebalance_run.data.moves_submitted
        assert settles == submits
        assert phases == PHASES

    def test_same_seed_runs_are_byte_identical(self, rebalance_run,
                                               tmp_path):
        again = _run(str(tmp_path))
        with open(rebalance_run.data.report_path, "rb") as handle:
            first = handle.read()
        with open(again.data.report_path, "rb") as handle:
            second = handle.read()
        assert first == second
        with open(rebalance_run.data.trace_path, "rb") as handle:
            first = handle.read()
        with open(again.data.trace_path, "rb") as handle:
            second = handle.read()
        assert first == second


class TestGates:
    def test_check_bench_passes_the_artifact(self, rebalance_run,
                                             capsys):
        check_bench = _load_script("check_bench")
        rc = check_bench.main([rebalance_run.data.report_path])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_check_bench_fails_a_divergent_run(self, rebalance_run,
                                               tmp_path):
        check_bench = _load_script("check_bench")
        with open(rebalance_run.data.report_path) as handle:
            record = json.load(handle)
        record["cases"][0]["imbalance_after"] = (
            record["cases"][0]["imbalance_before"] + 1.0)
        record["summary"]["lost_commits"] = 3
        path = str(tmp_path / "BENCH_rebalance.json")
        with open(path, "w") as handle:
            json.dump(record, handle)
        assert check_bench.main([path]) == 1

    def test_check_trace_gates_the_control_plane(self, rebalance_run,
                                                 capsys):
        check_trace = _load_script("check_trace")
        rc = check_trace.main([
            rebalance_run.data.trace_path,
            "--min-event", "rebalance.decide:1",
            "--min-event", "rebalance.submit:1",
            "--min-event", "rebalance.settle:1",
            "--require-all-migrations-ok",
            "--expect-owner-count", "1",
        ])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_check_trace_min_event_floor_fails_when_unmet(
            self, rebalance_run):
        check_trace = _load_script("check_trace")
        rc = check_trace.main([
            rebalance_run.data.trace_path,
            "--min-event", "rebalance.submit:100000",
        ])
        assert rc == 1

    def test_check_trace_namespace_without_new_flags_still_works(
            self, rebalance_run):
        # Older callers build the args namespace by hand; the new
        # flags must be optional for them (read via getattr).
        check_trace = _load_script("check_trace")
        args = argparse.Namespace(
            policy=None, min_rounds=None, min_players=None,
            require_phase_order=False, expect_outcome=None,
            min_fault_events=None, expect_standby_dropped=None,
            expect_owner_count=None, min_overlapping_faults=None,
            expect_resumed=None, max_lost_commits=None)
        _policy, failures, _skipped = check_trace.check_file(
            rebalance_run.data.trace_path, args)
        assert failures == []


class TestCli:
    def test_rebalance_subcommand_runs_and_writes_artifacts(
            self, tmp_path, capsys):
        rc = cli_main([
            "rebalance", "--profile", "quick", "--seed", str(SEED),
            "--tenants", str(TENANTS), "--nodes", str(NODES),
            "--phases", "1", "--phase-seconds", "60",
            "--bench-dir", str(tmp_path),
            "--trace-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Continuous rebalance" in out
        assert os.path.exists(str(tmp_path / "BENCH_rebalance.json"))
        assert os.path.exists(str(tmp_path / "trace_rebalance.jsonl"))

    def test_repro_list_mentions_rebalance(self, capsys):
        assert cli_main(["list"]) == 0
        assert "rebalance" in capsys.readouterr().out

    def test_bench_list_scenarios(self, capsys):
        assert cli_main(["bench", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in bench.SCENARIOS:
            assert name in out
            assert bench.SCENARIO_DESCRIPTIONS[name] in out

    def test_chaos_list_scenarios(self, capsys):
        assert cli_main(["chaos", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in chaos.SCENARIOS:
            assert name in out
            assert chaos.DESCRIPTIONS[name] in out

    def test_every_scenario_has_a_description(self):
        assert (set(bench.SCENARIO_DESCRIPTIONS)
                == set(bench.SCENARIOS) | set(bench.SCENARIO_ALIASES))
        assert set(chaos.DESCRIPTIONS) >= set(chaos.SCENARIOS)

    def test_scenario_aliases_resolve_to_real_scenarios(self):
        for target in bench.SCENARIO_ALIASES.values():
            assert target in bench.SCENARIOS
