"""The watermark (virtual-cut) snapshot path and its strategy API.

Three layers of coverage:

* **API** — :class:`SnapshotStrategy` coercion rules and the uniform
  ``strategy`` knob threading through ``MigrationOptions`` /
  ``ScheduleOptions`` / ``RebalanceOptions``;
* **Forward path** — a watermark migration under live write load is
  snapshot-equivalent (``consistent``), chunked, emits paired
  ``watermark.lo`` / ``watermark.hi`` markers, keeps its catch-up
  window bounded by chunk size, and aborts cleanly (source keeps
  ownership, gate reopens) when the destination dies mid-walk;
* **Crash-offset sweep** (satellite 3, in the style of
  ``test_handover_race.py``) — the source is crashed at evenly spaced
  instants across the whole watermark walk, including points strictly
  *inside* lo/hi windows (a chunk select/bracket in flight), then the
  migration restart-and-resumes until it lands.  At every offset:
  exactly one routing owner after every crash, the journal's chunk
  installs never duplicate, and the final owner holds every
  remotely-committed increment.
"""

from __future__ import annotations

import pytest

from repro.control import RebalanceOptions
from repro.core import MigrationOptions, SnapshotStrategy
from repro.core.middleware import JOURNAL_COMPLETED
from repro.core.scheduler import ScheduleOptions
from repro.errors import MigrationError, SourceCrashed
from repro.obs.trace import check_phase_order
from repro.sim import Environment

from _helpers import drive
from test_fault_tolerance import RATES, build, seed_tenant

CHUNK_MB = 1.0

#: Crash instants as fractions of the probed walk window (first lo
#: marker to last hi marker), strictly inside (0, 1) so every offset
#: races the walk itself rather than its endpoints.
SWEEP = (0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95)
MAX_RESUMES = 6


def _options(**extra):
    return MigrationOptions(rates=RATES, chunk_mb=CHUNK_MB,
                            strategy=SnapshotStrategy.WATERMARK,
                            **extra)


class TestSnapshotStrategyCoerce:
    def test_none_and_instances_pass_through(self):
        assert SnapshotStrategy.coerce(None) is None
        for member in SnapshotStrategy:
            assert SnapshotStrategy.coerce(member) is member

    def test_strings_coerce_case_insensitively(self):
        assert (SnapshotStrategy.coerce("watermark")
                is SnapshotStrategy.WATERMARK)
        assert (SnapshotStrategy.coerce("PIPELINED")
                is SnapshotStrategy.PIPELINED)
        assert (SnapshotStrategy.coerce("Serial")
                is SnapshotStrategy.SERIAL)

    def test_unknown_string_lists_the_members(self):
        with pytest.raises(ValueError) as excinfo:
            SnapshotStrategy.coerce("chunked")
        message = str(excinfo.value)
        for member in SnapshotStrategy:
            assert member.value in message

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            SnapshotStrategy.coerce(7)


class TestStrategyThreading:
    """One knob, three layers: the strategy resolves uniformly."""

    def test_migration_options_coerce_and_resolve(self):
        options = MigrationOptions(strategy="watermark")
        assert options.strategy is SnapshotStrategy.WATERMARK

    def test_schedule_options_fill_the_migration_strategy(self):
        resolved = ScheduleOptions(strategy="watermark").resolve()
        assert resolved.strategy is SnapshotStrategy.WATERMARK
        assert (resolved.migration.strategy
                is SnapshotStrategy.WATERMARK)

    def test_rebalance_options_fill_the_migration_strategy(self):
        resolved = RebalanceOptions(strategy="watermark").resolve()
        assert resolved.strategy is SnapshotStrategy.WATERMARK
        assert (resolved.migration.strategy
                is SnapshotStrategy.WATERMARK)

    def test_explicit_migration_strategy_wins(self):
        for options in (
                ScheduleOptions(
                    strategy="watermark",
                    migration=MigrationOptions(
                        strategy="pipelined")).resolve(),
                RebalanceOptions(
                    strategy="watermark",
                    migration=MigrationOptions(
                        strategy="pipelined")).resolve()):
            assert (options.migration.strategy
                    is SnapshotStrategy.PIPELINED)


def _launch(env, middleware, *, resume, **extra):
    holder = {}

    def main(env):
        try:
            if resume:
                holder["report"] = \
                    yield from middleware.resume_migration(
                        "A", _options(**extra))
            else:
                holder["report"] = yield from middleware.migrate(
                    "A", "node1", _options(**extra))
        except SourceCrashed as exc:
            holder["error"] = exc
        except MigrationError as exc:
            holder["migration_error"] = exc
    env.process(main(env))
    return holder


def _marker_times(middleware):
    los = [event.time for event in middleware.tracer.events
           if event.name == "watermark.lo"]
    his = [event.time for event in middleware.tracer.events
           if event.name == "watermark.hi"]
    return los, his


def _assert_no_lost_commits(cluster, middleware, workload):
    owner = middleware.route("A")
    table = cluster.node(owner).instance.tenant("A").table("kv")
    for key, increments in workload.committed_increments.items():
        assert table.chain(key).latest()["v"] == increments, \
            "key %d lost increments on owner %s" % (key, owner)


class TestWatermarkMigration:
    def test_live_migration_is_snapshot_equivalent(self, env):
        cluster, middleware = build(env, nodes=2)
        workload = seed_tenant(env, cluster, middleware,
                               overhead_mb=10.0)
        holder = _launch(env, middleware, resume=False)
        env.run()
        report = holder["report"]
        assert report.outcome == "ok"
        assert report.consistent is True, report.inconsistencies
        assert report.strategy == "watermark"
        assert report.pipelined is False
        # 10 MB of overhead at 1 MB chunks: a genuinely chunked walk.
        assert report.chunks >= 2
        assert middleware.owners("A") == ["node1"]
        _assert_no_lost_commits(cluster, middleware, workload)

    def test_lo_hi_markers_bracket_every_chunk(self, env):
        cluster, middleware = build(env, nodes=2)
        seed_tenant(env, cluster, middleware, overhead_mb=10.0)
        holder = _launch(env, middleware, resume=False)
        env.run()
        report = holder["report"]
        los, his = _marker_times(middleware)
        assert len(los) == len(his) == report.chunks
        # Brackets nest in walk order: lo_i <= hi_i <= lo_{i+1} (a
        # chunk small enough to select-and-install in zero sim time
        # legitimately collapses its bracket to an instant).
        for index, (lo, hi) in enumerate(zip(los, his)):
            assert lo <= hi
            if index + 1 < len(los):
                assert hi <= los[index + 1]

    def test_catchup_window_is_bounded_by_chunk_size(self, env):
        # The virtual-cut property, stated relatively: after the last
        # chunk the destination is already nearly caught up, so the
        # catch-up phase is a small fraction of the walk, not
        # proportional to it.
        cluster, middleware = build(env, nodes=2)
        seed_tenant(env, cluster, middleware, overhead_mb=10.0)
        holder = _launch(env, middleware, resume=False)
        env.run()
        report = holder["report"]
        assert report.dump_time > 0
        assert report.catchup_time < 0.5 * report.dump_time

    def test_snapshot_spans_declare_their_overlap(self, env):
        cluster, middleware = build(env, nodes=2)
        seed_tenant(env, cluster, middleware, overhead_mb=10.0)
        holder = _launch(env, middleware, resume=False)
        env.run()
        assert holder["report"].outcome == "ok"
        assert check_phase_order(middleware.tracer.spans) == []
        strategies = {span.attrs.get("strategy")
                      for span in middleware.tracer.spans
                      if span.name in ("dump", "restore")}
        assert strategies == {"watermark"}

    def test_standbys_ride_the_broadcast_stream(self, env):
        # PR 9 rejected watermark + standbys outright; the broadcast
        # tap lifts that: one change feed, one cursor per consumer, and
        # the chunk walk fans every deduplicated chunk out to the
        # standbys, so the standby copy is snapshot-equivalent too.
        cluster, middleware = build(env, nodes=3)
        workload = seed_tenant(env, cluster, middleware,
                               overhead_mb=10.0)
        holder = _launch(env, middleware, resume=False,
                         standbys=("node2",))
        env.run()
        report = holder["report"]
        assert report.outcome == "ok"
        assert report.consistent is True, report.inconsistencies
        assert report.standby_consistency == {"node2": True}
        assert report.failed_standbys == []
        assert middleware.owners("A") == ["node1"]
        _assert_no_lost_commits(cluster, middleware, workload)

    def test_standby_crash_mid_walk_is_discarded(self, env):
        # Per-consumer crash discard: a standby dying mid-walk drops
        # its cursor (so pending markers stop waiting on it) and the
        # migration lands on the primary destination regardless.
        cluster, middleware = build(env, nodes=3)
        workload = seed_tenant(env, cluster, middleware,
                               overhead_mb=10.0)

        def crasher(env):
            while not any(e.name == "watermark.lo"
                          for e in middleware.tracer.events):
                yield env.timeout(0.02)
            cluster.node("node2").instance.crash()
        env.process(crasher(env))
        holder = _launch(env, middleware, resume=False,
                         standbys=("node2",))
        env.run()
        report = holder["report"]
        assert report.outcome == "ok"
        assert report.consistent is True, report.inconsistencies
        assert report.failed_standbys == ["node2"]
        assert middleware.owners("A") == ["node1"]
        _assert_no_lost_commits(cluster, middleware, workload)

    def test_destination_crash_aborts_to_live_source(self, env):
        cluster, middleware = build(env, nodes=2)
        workload = seed_tenant(env, cluster, middleware,
                               overhead_mb=10.0)

        def crasher(env):
            while not any(e.name == "watermark.lo"
                          for e in middleware.tracer.events):
                yield env.timeout(0.02)
            cluster.node("node1").instance.crash()
        env.process(crasher(env))
        holder = _launch(env, middleware, resume=False)
        env.run()
        assert "migration_error" in holder
        assert middleware.owners("A") == ["node0"]
        state = middleware.tenant_state("A")
        assert state.gate.is_open
        assert not state.migrating
        assert state.change_tap is None
        assert state.propagator is None
        _assert_no_lost_commits(cluster, middleware, workload)


# ---------------------------------------------------------------------
# Satellite 3: the crash-offset sweep across the watermark walk.
# ---------------------------------------------------------------------

def _seed_for_sweep(env, cluster, middleware):
    return seed_tenant(env, cluster, middleware, overhead_mb=10.0,
                       clients=3, txns=200, think_time=0.2)


def _probe_walk():
    """Clean run: the walk window and every chunk's lo/hi bracket."""
    env = Environment()
    cluster, middleware = build(env, nodes=2, resumable=True)
    _seed_for_sweep(env, cluster, middleware)
    holder = _launch(env, middleware, resume=False)
    env.run()
    assert holder["report"].outcome == "ok"
    los, his = _marker_times(middleware)
    assert len(los) == len(his) >= 3
    return los[0], his[-1], list(zip(los, his))


@pytest.fixture(scope="module")
def walk_window():
    return _probe_walk()


def _run_sweep_point(crash_at, inside_window=None):
    """Crash the source at ``crash_at`` and resume until it lands."""
    env = Environment()
    cluster, middleware = build(env, nodes=2, resumable=True)
    workload = _seed_for_sweep(env, cluster, middleware)
    source = cluster.node("node0").instance
    holder = _launch(env, middleware, resume=False)
    env.run(until=crash_at)
    assert "report" not in holder, \
        "crash offset %.3f missed the migration" % crash_at
    source.crash()
    env.run()
    assert "error" in holder
    assert len(middleware.owners("A")) == 1

    resumes = 0
    while True:
        drive(env, source.restart())
        holder = _launch(env, middleware, resume=True)
        env.run()
        assert len(middleware.owners("A")) == 1
        if "report" in holder:
            break
        resumes += 1
        assert resumes < MAX_RESUMES, \
            "migration did not land after %d resumes" % resumes

    report = holder["report"]
    assert report.outcome == "ok"
    assert report.resumed is True
    assert report.consistent is True
    assert report.strategy == "watermark"
    assert middleware.owners("A") == ["node1"]

    journal = middleware.migration_journal("A")
    assert journal.state == JOURNAL_COMPLETED
    assert journal.strategy == "watermark"
    assert journal.watermark_cursor is None
    # Every chunk installed exactly once across the first attempt plus
    # every resume: a duplicate index could only come from a resume
    # re-walking ground the journal already covered.
    log = journal.chunk_log["node1"]
    assert len(log) == len(set(log)), \
        "duplicated chunk installs at %.3f: %r" % (crash_at, log)
    assert sorted(log) == list(range(journal.watermark_chunks))
    assert report.chunks + report.chunks_skipped == \
        journal.watermark_chunks

    env.run()
    _assert_no_lost_commits(cluster, middleware, workload)
    return report


@pytest.mark.parametrize("fraction", SWEEP)
def test_source_crash_swept_across_the_walk(fraction, walk_window):
    walk_start, walk_end, _windows = walk_window
    _run_sweep_point(walk_start + fraction * (walk_end - walk_start))


def test_sweep_covers_points_inside_lo_hi_windows(walk_window):
    # The sweep is only meaningful if some offsets land strictly
    # inside a lo/hi bracket (chunk select in flight) and some between
    # brackets; with ~10 chunks over the walk both must occur.
    walk_start, walk_end, windows = walk_window
    points = [walk_start + f * (walk_end - walk_start) for f in SWEEP]

    def inside(point):
        return any(lo < point < hi for lo, hi in windows)
    assert any(inside(point) for point in points)


def test_resume_mid_chunk(walk_window):
    # Pin one crash to the exact middle of a mid-walk lo/hi bracket:
    # the chunk select (and its watermark bracket) is in flight, the
    # journal still points at the previous cursor, and the resumed
    # walk must re-select that chunk under a fresh bracket.
    _start, _end, windows = walk_window
    lo, hi = windows[len(windows) // 2]
    report = _run_sweep_point(lo + 0.5 * (hi - lo))
    # The resumed attempt skipped the journalled chunks and re-walked
    # the rest, so both sides of the split are non-empty.
    assert report.chunks_skipped >= 1
    assert report.chunks >= 1


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
