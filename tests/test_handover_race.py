"""Property sweep over the handover window (two-step ownership switch).

The handover journals ``prepared -> ready -> committed``; recovery
rolls a ``prepared`` record back to the source and a ``ready`` record
forward to the destination.  These tests replay the same seeded
migration and inject a crash at evenly spaced instants across the
window measured from a clean probe run, then assert the invariant the
journal exists for: post-recovery routing names *exactly one* owner,
and that owner holds every remotely-committed transaction.

Two crash flavours:

* the migration manager dies (the ``migrate`` process is interrupted
  mid-handover) and ``recover_routing`` resolves the in-doubt record;
* the source *node* dies, which the handover absorbs in-line — before
  ``ready`` nothing moved, at/after ``ready`` it rolls forward.
"""

from __future__ import annotations

import pytest

from repro.core import MigrationOptions
from repro.errors import MigrationError
from repro.sim import Environment, Interrupt

from test_fault_tolerance import RATES, build, seed_tenant

#: Crash instants as fractions of each journal sub-window, kept
#: strictly inside (0, 1) so the crash races the drain / flush steps
#: rather than the transition instants themselves.  The ``prepared``
#: sub-window (drain) is wide, the ``ready`` one (journal flush) is a
#: couple of milliseconds — sampling them separately is what makes the
#: sweep actually hit both recovery rules.
PREPARED_FRACTIONS = [0.02 + 0.96 * index / 5 for index in range(6)]
READY_FRACTIONS = [0.25, 0.5, 0.75]


def _start_migration(offset_time=None, crash_source_instead=False):
    """Fresh seeded testbed with the migration racing one crash.

    Returns ``(env, cluster, middleware, workload, holder)`` after the
    event queue drains the first time (clients that were parked behind
    a still-closed gate simply stay parked until recovery reopens it).
    """
    env = Environment()
    cluster, middleware = build(env)
    workload = seed_tenant(env, cluster, middleware)
    holder = {}

    def main(env):
        try:
            holder["report"] = yield from middleware.migrate(
                "A", "node1", MigrationOptions(rates=RATES))
        except Interrupt:
            holder["interrupted"] = True
        except MigrationError as exc:
            holder["error"] = exc

    proc = env.process(main(env), name="migrate-A")

    if offset_time is not None:
        def crasher(env):
            yield env.timeout(max(0.0, offset_time - env.now))
            if crash_source_instead:
                cluster.node("node0").instance.crash()
            elif proc.is_alive:
                proc.interrupt("manager-crash")
        env.process(crasher(env), name="handover-crasher")
    env.run()
    return env, cluster, middleware, workload, holder


def _handover_window():
    """Probe run: crash instants covering both journal sub-windows."""
    _env, _cluster, middleware, _workload, holder = _start_migration()
    assert "report" in holder
    times = {event.name: event.time
             for event in middleware.tracer.events
             if event.name in ("handover.prepare", "handover.ready",
                               "handover.commit")}
    prepare = times["handover.prepare"]
    ready = times["handover.ready"]
    commit = times["handover.commit"]
    assert prepare < ready < commit
    return ([prepare + f * (ready - prepare)
             for f in PREPARED_FRACTIONS]
            + [ready + f * (commit - ready) for f in READY_FRACTIONS])


def _assert_no_committed_txn_lost(cluster, owner, workload):
    table = cluster.node(owner).instance.tenant("A").table("kv")
    for key, increments in workload.committed_increments.items():
        assert table.chain(key).latest()["v"] == increments, \
            "key %d lost increments on owner %s" % (key, owner)


def _journal_balanced(middleware):
    prepares = sum(1 for e in middleware.tracer.events
                   if e.name == "handover.prepare")
    resolved = sum(1 for e in middleware.tracer.events
                   if e.name in ("handover.commit", "handover.rollback"))
    return prepares == resolved


class TestManagerCrashInsideHandover:
    def test_every_offset_recovers_to_exactly_one_owner(self):
        seen_owners = set()
        for crash_at in _handover_window():
            env, cluster, middleware, workload, holder = \
                _start_migration(offset_time=crash_at)
            # the in-doubt record already names exactly one owner ...
            assert len(middleware.owners("A")) == 1, \
                "crash at %.4f: owners=%r" % (crash_at,
                                              middleware.owners("A"))
            owner = middleware.recover_routing("A")
            seen_owners.add(owner)
            # ... and recovery resolves the route to that same owner
            assert middleware.owners("A") == [owner]
            assert middleware.route("A") == owner
            assert owner in ("node0", "node1")
            if "report" in holder:
                # commit won the race: roll-forward is the only option
                assert owner == "node1"
            state = middleware.tenant_state("A")
            assert state.gate.is_open
            assert not state.migrating
            assert state.propagator is None
            assert state.standby_propagators == {}
            assert _journal_balanced(middleware)
            # let the clients parked behind the gate finish on the owner
            env.run()
            _assert_no_committed_txn_lost(cluster, owner, workload)
        # the sweep must actually exercise the race: early offsets roll
        # back to the source, late ones roll forward to the destination
        assert seen_owners == {"node0", "node1"}, seen_owners

    def test_recover_routing_without_migration_is_a_no_op(self):
        _env, _cluster, middleware, _workload, holder = _start_migration()
        assert holder["report"].outcome == "ok"
        assert middleware.owners("A") == ["node1"]
        assert middleware.recover_routing("A") == "node1"
        assert middleware.route("A") == "node1"


class TestSourceNodeCrashInsideHandover:
    def test_every_offset_leaves_one_live_owner(self):
        for crash_at in _handover_window():
            env, cluster, middleware, workload, holder = \
                _start_migration(offset_time=crash_at,
                                 crash_source_instead=True)
            assert len(middleware.owners("A")) == 1
            owner = middleware.owners("A")[0]
            if "report" in holder:
                # the drain had finished everything the destination
                # needs, so the switch rolled forward
                assert owner == "node1"
                assert holder["report"].outcome == "ok"
            else:
                # aborted back to the source: restart it and check that
                # WAL replay preserved every remotely-committed txn
                assert owner == "node0"
                assert middleware.route("A") == "node0"
                restarted = {}

                def restart(env):
                    yield from cluster.node("node0").instance.restart()
                    restarted["done"] = True
                env.process(restart(env))
                env.run()
                assert restarted.get("done")
            assert middleware.tenant_state("A").gate.is_open
            _assert_no_committed_txn_lost(cluster, owner, workload)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
