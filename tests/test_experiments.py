"""Smoke tests of the experiment harness at the SMOKE profile.

Each paper table/figure module must run end-to-end and produce a
non-degenerate report.  The quantitative shape checks live in the
benchmarks; here we assert the machinery and the qualitative invariants
that hold even at tiny scale.
"""

import pytest

from repro.core.policy import B_MIN, MADEUS
from repro.experiments import SMOKE, TenantSetup, build_testbed, \
    get_profile
from repro.experiments import costmodel, dbsize, migration_time, \
    multitenant, performance, preliminary
from repro.experiments.profiles import PAPER, PROFILES, QUICK


class TestProfiles:
    def test_registry_contains_three(self):
        assert set(PROFILES) == {"paper", "quick", "smoke"}

    def test_get_profile_by_name(self):
        assert get_profile("paper") is PAPER
        assert get_profile("quick") is QUICK

    def test_get_profile_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert get_profile() is QUICK
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        assert get_profile() is SMOKE

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            get_profile("gigantic")

    def test_eb_scaling(self):
        assert PAPER.ebs(700) == 700
        assert QUICK.ebs(700) == 70
        assert QUICK.ebs(1) >= 1

    def test_duration_scaling(self):
        assert QUICK.duration(100.0) == pytest.approx(12.5)


class TestTestbedBuilder:
    def test_builds_nodes_and_tenants(self):
        testbed = build_testbed(SMOKE,
                                [TenantSetup("A", "node0", paper_ebs=100)])
        assert testbed.node("node0").hosts("A")
        assert not testbed.node("node1").hosts("A")
        assert "A" in testbed.metrics

    def test_load_flows(self):
        testbed = build_testbed(SMOKE,
                                [TenantSetup("A", "node0", paper_ebs=200)])
        testbed.run(until=3.0)
        assert testbed.metrics["A"].interactions > 0

    def test_multiple_tenants_share_node(self):
        testbed = build_testbed(
            SMOKE,
            [TenantSetup("A", "node0", paper_ebs=100),
             TenantSetup("B", "node0", paper_ebs=100)])
        instance = testbed.node("node0").instance
        assert instance.has_tenant("A") and instance.has_tenant("B")

    def test_migrate_async_completes(self):
        testbed = build_testbed(SMOKE,
                                [TenantSetup("A", "node0", paper_ebs=100)])
        testbed.run(until=1.0)
        outcome = testbed.migrate_async("A", "node1")
        testbed.run_until(lambda: "done" in outcome, step=2.0, cap=300.0)
        assert outcome["report"].consistent is True


class TestFigure5:
    def test_sweep_produces_monotone_response_times(self):
        points = preliminary.run_preliminary(
            SMOKE, eb_counts=(100, 400, 700), window=40.0)
        assert len(points) == 3
        rts = [p.mean_response_time for p in points]
        assert rts[0] < rts[2]  # heavier load, slower responses

    def test_report_renders(self):
        points = preliminary.run_preliminary(SMOKE, eb_counts=(100,),
                                             window=40.0)
        text = preliminary.report(points, SMOKE)
        assert "Figure 5" in text

    def test_classify_bands(self):
        assert preliminary.classify(0.01, 1.0) == "light"
        assert preliminary.classify(0.5, 1.0) == "medium"
        assert preliminary.classify(3.0, 1.0) == "heavy"


class TestFigure6:
    def test_single_cell_runs(self):
        result = migration_time.run_one(MADEUS, 100, SMOKE)
        assert result.migration_time is not None
        assert result.consistent is True

    def test_report_renders_with_na(self):
        results = [migration_time.MigrationResult("B-CON", 700, None)]
        text = migration_time.report(results, SMOKE)
        assert "N/A" in text

    def test_table2_rendering(self):
        text = migration_time.report_table2()
        assert "Madeus" in text and "CON-COM" in text


class TestFigures7and8:
    def test_timeline_runs_and_has_migration_window(self):
        result = performance.run_timeline(SMOKE, paper_ebs=300,
                                          checkpoints=False)
        assert result.report is not None
        assert result.migration_end > result.migration_start
        assert len(result.response_series) > 3
        text7 = performance.report_fig7(result, SMOKE)
        text8 = performance.report_fig8(result, SMOKE)
        assert "Figure 7" in text7 and "Figure 8" in text8


class TestFigure9:
    def test_table3_report(self):
        text = dbsize.report_table3(SMOKE)
        assert "Table 3" in text

    def test_size_point_runs(self):
        result = dbsize.run_one_size(100000, 100, SMOKE, paper_ebs=200)
        assert result.migration_time is not None
        assert result.size_mb > 0


class TestMultitenant:
    def test_case_runs_and_reports(self):
        case = multitenant.run_case("B", SMOKE)
        assert case.migration_time is not None
        assert set(case.tenants) == {"A", "B", "C"}
        text = multitenant.report_case(case, SMOKE, "Figures 10-13")
        assert "tenant" in text

    def test_which_migration_answer_structure(self):
        case1 = multitenant.run_case("B", SMOKE)
        case2 = multitenant.run_case("C", SMOKE)
        answer, reasons = multitenant.which_migration_is_better(case1,
                                                                case2)
        assert answer in ("heavy", "light")
        assert isinstance(reasons, list)

    def test_parallel_evacuation_beats_serialized(self):
        result = multitenant.run_parallel_evacuation(SMOKE)
        assert result.schedule.ok_count == 2
        assert result.schedule.max_in_flight == 2
        assert result.concurrent_wall_clock < \
            result.serialized_wall_clock
        assert 0.0 < result.improvement < 1.0
        text = multitenant.report_parallel(result)
        assert "Parallel evacuation" in text
        assert "tenant A" in text and "tenant C" in text


class TestCostModelCli:
    def test_main_prints(self, capsys):
        costmodel.main()
        output = capsys.readouterr().out
        assert "C_madeus" in output
        assert "identity holds: True" in output
