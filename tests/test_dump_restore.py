"""Tests for logical dump/restore and the cluster/network substrate."""

import pytest

from repro.cluster import Cluster, NodeSpec
from repro.engine import DbmsInstance, Session, TransferRates, dump, \
    restore, restore_duration
from repro.engine.disk import DiskSpec
from repro.errors import RoutingError
from repro.net.network import Network, NetworkSpec
from repro.sim import Environment

from _helpers import drive


def _setup_tenant(env, instance, rows=20):
    instance.create_tenant("T")

    def setup(env):
        s = Session(instance, "T")
        yield from s.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        yield from s.execute("CREATE INDEX idx_v ON kv (v)")
        yield from s.execute("BEGIN")
        for key in range(rows):
            yield from s.execute(
                "INSERT INTO kv (k, v) VALUES (%d, %d)" % (key, key % 5))
        yield from s.execute("COMMIT")
    drive(env, setup(env))


class TestDump:
    def test_dump_captures_snapshot_state(self, env):
        instance = DbmsInstance(env, "src")
        _setup_tenant(env, instance, rows=10)
        csn = instance.current_csn()

        def proc(env):
            snapshot = yield from dump(instance, "T", csn,
                                       TransferRates())
            return snapshot
        snapshot = drive(env, proc(env))
        assert snapshot.snapshot_csn == csn
        assert len(snapshot.rows["kv"]) == 10

    def test_dump_excludes_later_commits(self, env):
        instance = DbmsInstance(env, "src")
        _setup_tenant(env, instance, rows=5)
        csn = instance.current_csn()

        def mutate(env):
            s = Session(instance, "T")
            yield from s.execute("BEGIN")
            yield from s.execute("SELECT v FROM kv WHERE k = 0")
            yield from s.execute("UPDATE kv SET v = 999 WHERE k = 0")
            yield from s.execute("COMMIT")

        def dumper(env):
            snapshot = yield from dump(instance, "T", csn,
                                       TransferRates(dump_mb_s=0.001))
            return snapshot
        env.process(mutate(env))
        process = env.process(dumper(env))
        env.run()
        snapshot = process.value
        # the concurrent update committed during the dump is invisible
        assert snapshot.rows["kv"][0]["v"] == 0

    def test_dump_duration_scales_with_size(self, env):
        instance = DbmsInstance(env, "src")
        _setup_tenant(env, instance)
        instance.tenant("T").fixed_overhead_mb = 10.0
        csn = instance.current_csn()

        def proc(env):
            started = env.now
            yield from dump(instance, "T", csn,
                            TransferRates(dump_mb_s=5.0))
            return env.now - started
        elapsed = drive(env, proc(env))
        assert elapsed == pytest.approx(10.0 / 5.0, rel=0.2)


class TestRestore:
    def _roundtrip(self, env, rows=15):
        source = DbmsInstance(env, "src")
        destination = DbmsInstance(env, "dst")
        _setup_tenant(env, source, rows=rows)
        csn = source.current_csn()

        def proc(env):
            snapshot = yield from dump(source, "T", csn, TransferRates())
            yield from restore(destination, snapshot, TransferRates())
        drive(env, proc(env))
        return source, destination

    def test_restored_rows_match(self, env):
        source, destination = self._roundtrip(env)
        from repro.core import states_equal
        equal, differences = states_equal(source.tenant("T"),
                                          destination.tenant("T"))
        assert equal, differences

    def test_restored_indexes_rebuilt(self, env):
        _source, destination = self._roundtrip(env, rows=15)
        table = destination.tenant("T").table("kv")
        assert "idx_v" in table.indexes
        assert table.indexes["idx_v"].entry_count() == 15

    def test_restore_preserves_size_model(self, env):
        source = DbmsInstance(env, "src")
        destination = DbmsInstance(env, "dst")
        _setup_tenant(env, source)
        source.tenant("T").fixed_overhead_mb = 7.0
        source.tenant("T").size_multiplier = 3.0
        csn = source.current_csn()

        def proc(env):
            snapshot = yield from dump(source, "T", csn, TransferRates())
            yield from restore(destination, snapshot, TransferRates())
        drive(env, proc(env))
        assert destination.tenant("T").size_mb() == pytest.approx(
            source.tenant("T").size_mb())

    def test_restore_rename(self, env):
        source = DbmsInstance(env, "src")
        destination = DbmsInstance(env, "dst")
        _setup_tenant(env, source)
        csn = source.current_csn()

        def proc(env):
            snapshot = yield from dump(source, "T", csn, TransferRates())
            name = yield from restore(destination, snapshot,
                                      TransferRates(),
                                      tenant_name="T-copy")
            return name
        assert drive(env, proc(env)) == "T-copy"
        assert destination.has_tenant("T-copy")


class TestRestoreDuration:
    def test_linear_below_base(self):
        rates = TransferRates(restore_mb_s=10.0, base_mb=800.0)
        assert restore_duration(400.0, rates) == pytest.approx(40.0)

    def test_superlinear_above_base(self):
        """Figure 9's shape: doubling the size more than doubles the
        restore time once past the base size."""
        rates = TransferRates(restore_mb_s=10.0, base_mb=800.0)
        t1 = restore_duration(3100.0, rates)
        t2 = restore_duration(6200.0, rates)
        t3 = restore_duration(12000.0, rates)
        assert t2 / t1 > 2.0
        assert t3 / t2 > 1.9

    def test_monotone(self):
        rates = TransferRates()
        previous = 0.0
        for size in (100, 800, 1600, 6400):
            duration = restore_duration(float(size), rates)
            assert duration > previous
            previous = duration


class TestNetwork:
    def test_message_latency_only_for_small(self, env):
        network = Network(env, NetworkSpec(latency=0.001))

        def proc(env):
            yield from network.message(0.0)
            return env.now
        assert drive(env, proc(env)) == pytest.approx(0.001)

    def test_bulk_transfer_pays_bandwidth(self, env):
        network = Network(env, NetworkSpec(latency=0.0,
                                           bandwidth_mb_s=100.0))

        def proc(env):
            yield from network.message(200.0)
            return env.now
        assert drive(env, proc(env)) == pytest.approx(2.0)

    def test_bulk_transfers_serialise(self, env):
        network = Network(env, NetworkSpec(latency=0.0,
                                           bandwidth_mb_s=100.0))
        times = []

        def proc(env):
            yield from network.message(100.0)
            times.append(env.now)
        env.process(proc(env))
        env.process(proc(env))
        env.run()
        assert times == [1.0, 2.0]

    def test_round_trip_two_hops(self, env):
        network = Network(env, NetworkSpec(latency=0.002))

        def proc(env):
            yield from network.round_trip()
            return env.now
        assert drive(env, proc(env)) == pytest.approx(0.004)

    def test_message_counter(self, env):
        network = Network(env)

        def proc(env):
            yield from network.round_trip()
        drive(env, proc(env))
        assert network.messages == 2


class TestCluster:
    def test_add_and_lookup_node(self, env):
        cluster = Cluster(env)
        node = cluster.add_node("n0")
        assert cluster.node("n0") is node

    def test_duplicate_node_rejected(self, env):
        cluster = Cluster(env)
        cluster.add_node("n0")
        with pytest.raises(RoutingError):
            cluster.add_node("n0")

    def test_unknown_node_raises(self, env):
        with pytest.raises(RoutingError):
            Cluster(env).node("ghost")

    def test_node_of_tenant(self, env):
        cluster = Cluster(env)
        node = cluster.add_node("n0")
        cluster.add_node("n1")
        node.instance.create_tenant("A")
        assert cluster.node_of_tenant("A") is node

    def test_node_of_unknown_tenant_raises(self, env):
        cluster = Cluster(env)
        cluster.add_node("n0")
        with pytest.raises(RoutingError):
            cluster.node_of_tenant("ghost")

    def test_dual_hosting_detected(self, env):
        cluster = Cluster(env)
        cluster.add_node("n0").instance.create_tenant("A")
        cluster.add_node("n1").instance.create_tenant("A")
        with pytest.raises(RoutingError, match="2 nodes"):
            cluster.node_of_tenant("A")

    def test_tenant_placement(self, env):
        cluster = Cluster(env)
        cluster.add_node("n0").instance.create_tenant("A")
        cluster.add_node("n1").instance.create_tenant("B")
        assert cluster.tenant_placement() == {"A": "n0", "B": "n1"}

    def test_node_spec_applied(self, env):
        cluster = Cluster(env)
        spec = NodeSpec(cpu_cores=8, disk=DiskSpec(fsync_latency=0.123))
        node = cluster.add_node("n0", spec)
        assert node.instance.cpu.capacity == 8
        assert node.instance.disk.spec.fsync_latency == 0.123
