"""Property-based tests for the LSIR and migration consistency.

The headline property (Theorem 2): for *randomised* workloads running
through the middleware, a live migration under any propagation policy
leaves the slave's logical state equal to the master's final state, and
Madeus's replay schedule satisfies the LSIR validator.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster
from repro.core import (ALL_POLICIES, MADEUS, Middleware,
                        MiddlewareConfig, MigrationOptions,
                        mapping_function_output)
from repro.engine.dump import TransferRates
from repro.sim import Environment
from repro.workload.simplekv import (KvWorkloadConfig, run_kv_clients,
                                     setup_kv_tenant)

RATES = TransferRates(dump_mb_s=5.0, restore_mb_s=2.0)


# ---------------------------------------------------------------------------
# mapping function (Definition 2) properties
# ---------------------------------------------------------------------------

op_kind = st.sampled_from(["read", "write"])


@st.composite
def master_transaction(draw):
    body = draw(st.lists(op_kind, min_size=1, max_size=10))
    kinds = (["first_read"] + body) if body[0] != "write" else \
        (["first_read"] + body[1:])
    committed = draw(st.booleans())
    kinds.append("commit" if committed else "abort")
    is_update = "write" in kinds
    return kinds, committed, is_update


@given(txn=master_transaction())
def test_mapping_function_output_shape(txn):
    """Def. 2: either empty, or exactly first_read + writes + commit."""
    kinds, committed, is_update = txn
    output = mapping_function_output(kinds, committed, is_update)
    if not committed or not is_update:
        assert output == []
        return
    assert output[0] == "first_read"
    assert output[-1] == "commit"
    middle = output[1:-1]
    assert all(k == "write" for k in middle)
    assert len(middle) == kinds.count("write")


@given(txn=master_transaction())
def test_mapping_function_never_grows(txn):
    kinds, committed, is_update = txn
    output = mapping_function_output(kinds, committed, is_update)
    assert len(output) <= len(kinds)


# ---------------------------------------------------------------------------
# migration consistency under randomised workloads (Theorem 2)
# ---------------------------------------------------------------------------

@st.composite
def migration_scenario(draw):
    return {
        "seed": draw(st.integers(min_value=0, max_value=10**6)),
        "clients": draw(st.integers(min_value=2, max_value=6)),
        "keys": draw(st.integers(min_value=5, max_value=40)),
        "read_ratio": draw(st.floats(min_value=0.0, max_value=0.8)),
        "txns": draw(st.integers(min_value=10, max_value=50)),
        "policy_index": draw(st.integers(min_value=0, max_value=3)),
        "migrate_after": draw(st.floats(min_value=0.0, max_value=0.3)),
    }


@given(scenario=migration_scenario())
@settings(max_examples=20, deadline=None)
def test_migration_preserves_state_for_any_policy(scenario):
    policy = ALL_POLICIES[scenario["policy_index"]]
    env = Environment()
    cluster = Cluster(env)
    cluster.add_node("node0")
    cluster.add_node("node1")
    middleware = Middleware(env, cluster, MiddlewareConfig(
        policy=policy, validate_lsir=(policy is MADEUS),
        verify_consistency=True))
    holder = {}

    def main(env):
        yield from setup_kv_tenant(cluster.node("node0").instance, "A",
                                   scenario["keys"])
        middleware.register_tenant("A", "node0")
        config = KvWorkloadConfig(
            keys=scenario["keys"], clients=scenario["clients"],
            transactions_per_client=scenario["txns"],
            read_only_ratio=scenario["read_ratio"], think_time=0.01)
        workload = run_kv_clients(env, middleware, "A", config,
                                  seed=scenario["seed"])
        yield env.timeout(scenario["migrate_after"])
        report = yield from middleware.migrate(
            "A", "node1", MigrationOptions(rates=RATES))
        holder["report"] = report
        holder["workload"] = workload
    env.process(main(env))
    env.run()
    report = holder["report"]
    assert report.consistent is True, (policy.name,
                                       report.inconsistencies)
    if policy is MADEUS:
        assert report.lsir_violations == []
    # the slave's counters match exactly the committed increments
    slave = cluster.node("node1").instance.tenant("A")
    table = slave.table("kv")
    for key in range(scenario["keys"]):
        expected = holder["workload"].committed_increments.get(key, 0)
        row = table.chain(key).latest() if table.chain(key) else None
        value = row["v"] if row else 0
        assert value == expected, "key %d: %r != %r" % (key, value,
                                                        expected)


@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=10, deadline=None)
def test_group_commit_flushes_never_exceed_commits(seed):
    """On the slave WAL, flushes <= commits always (group commit can
    only merge, never split)."""
    env = Environment()
    cluster = Cluster(env)
    cluster.add_node("node0")
    node1 = cluster.add_node("node1")
    middleware = Middleware(env, cluster,
                            MiddlewareConfig(policy=MADEUS))

    def main(env):
        yield from setup_kv_tenant(cluster.node("node0").instance, "A",
                                   20)
        middleware.register_tenant("A", "node0")
        config = KvWorkloadConfig(keys=20, clients=5,
                                  transactions_per_client=30,
                                  read_only_ratio=0.2, think_time=0.005)
        run_kv_clients(env, middleware, "A", config, seed=seed)
        yield env.timeout(0.05)
        yield from middleware.migrate(
            "A", "node1", MigrationOptions(rates=RATES))
    env.process(main(env))
    env.run()
    wal = node1.instance.wal
    assert wal.flush_count <= wal.commit_count
