"""Tests for version chains, secondary indexes, and schemas."""

import pytest

from repro.engine.mvcc import SecondaryIndex, VersionChain
from repro.engine.schema import Catalog, TableSchema
from repro.engine.sqlmini import ColumnDef
from repro.errors import SchemaError


class TestVersionChain:
    def test_read_before_any_version_is_none(self):
        chain = VersionChain()
        assert chain.read(100) is None

    def test_visibility_by_snapshot(self):
        chain = VersionChain()
        chain.install(5, {"v": "old"})
        chain.install(10, {"v": "new"})
        assert chain.read(4) is None
        assert chain.read(5) == {"v": "old"}
        assert chain.read(9) == {"v": "old"}
        assert chain.read(10) == {"v": "new"}
        assert chain.read(999) == {"v": "new"}

    def test_tombstone_hides_row(self):
        chain = VersionChain()
        chain.install(1, {"v": 1})
        chain.install(2, None)
        assert chain.read(1) == {"v": 1}
        assert chain.read(2) is None

    def test_latest(self):
        chain = VersionChain()
        chain.install(1, {"v": 1})
        chain.install(3, {"v": 3})
        assert chain.latest() == {"v": 3}
        assert chain.latest_csn() == 3

    def test_empty_latest(self):
        chain = VersionChain()
        assert chain.latest() is None
        assert chain.latest_csn() == 0

    def test_non_monotonic_install_rejected(self):
        chain = VersionChain()
        chain.install(5, {})
        with pytest.raises(ValueError):
            chain.install(5, {})
        with pytest.raises(ValueError):
            chain.install(4, {})

    def test_prune_keeps_visible_version(self):
        chain = VersionChain()
        for csn in (1, 2, 3, 4):
            chain.install(csn, {"v": csn})
        dropped = chain.prune(horizon_csn=3)
        assert dropped == 2
        # version at csn=3 must survive (visible to horizon snapshots)
        assert chain.read(3) == {"v": 3}
        assert chain.read(4) == {"v": 4}

    def test_prune_nothing_below_horizon(self):
        chain = VersionChain()
        chain.install(10, {"v": 1})
        assert chain.prune(5) == 0

    def test_version_count(self):
        chain = VersionChain()
        chain.install(1, {})
        chain.install(2, {})
        assert chain.version_count() == 2


class TestSecondaryIndex:
    def test_add_lookup_remove(self):
        index = SecondaryIndex("color")
        index.add("red", 1)
        index.add("red", 2)
        index.add("blue", 3)
        assert sorted(index.lookup("red")) == [1, 2]
        index.remove("red", 1)
        assert sorted(index.lookup("red")) == [2]

    def test_lookup_missing_value(self):
        assert SecondaryIndex("c").lookup("nope") == ()

    def test_remove_clears_empty_posting(self):
        index = SecondaryIndex("c")
        index.add("x", 1)
        index.remove("x", 1)
        assert index.entry_count() == 0

    def test_remove_nonexistent_is_noop(self):
        index = SecondaryIndex("c")
        index.remove("ghost", 1)
        assert index.entry_count() == 0


def _schema(*cols):
    return TableSchema("t", tuple(cols))


class TestTableSchema:
    def test_requires_exactly_one_primary_key(self):
        with pytest.raises(SchemaError):
            _schema(ColumnDef("a", "INT"), ColumnDef("b", "INT"))
        with pytest.raises(SchemaError):
            _schema(ColumnDef("a", "INT", True), ColumnDef("b", "INT", True))

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            _schema(ColumnDef("a", "INT", True), ColumnDef("a", "INT"))

    def test_primary_key_property(self):
        schema = _schema(ColumnDef("id", "INT", True),
                         ColumnDef("v", "TEXT"))
        assert schema.primary_key == "id"

    def test_require_column(self):
        schema = _schema(ColumnDef("id", "INT", True))
        schema.require_column("id")
        with pytest.raises(SchemaError):
            schema.require_column("missing")

    def test_add_column(self):
        schema = _schema(ColumnDef("id", "INT", True))
        schema.add_column(ColumnDef("extra", "TEXT"))
        assert schema.has_column("extra")

    def test_add_duplicate_column_rejected(self):
        schema = _schema(ColumnDef("id", "INT", True))
        with pytest.raises(SchemaError):
            schema.add_column(ColumnDef("id", "INT"))

    def test_add_second_primary_key_rejected(self):
        schema = _schema(ColumnDef("id", "INT", True))
        with pytest.raises(SchemaError):
            schema.add_column(ColumnDef("id2", "INT", True))

    def test_add_index(self):
        schema = _schema(ColumnDef("id", "INT", True),
                         ColumnDef("c", "TEXT"))
        schema.add_index("idx", "c")
        assert schema.indexes == {"idx": "c"}
        with pytest.raises(SchemaError):
            schema.add_index("idx", "c")

    def test_index_on_missing_column_rejected(self):
        schema = _schema(ColumnDef("id", "INT", True))
        with pytest.raises(SchemaError):
            schema.add_index("idx", "nope")

    def test_row_width_grows_with_columns_and_indexes(self):
        narrow = _schema(ColumnDef("id", "INT", True))
        wide = _schema(ColumnDef("id", "INT", True),
                       ColumnDef("blob", "BLOB"))
        assert wide.row_width_bytes() > narrow.row_width_bytes()
        indexed = _schema(ColumnDef("id", "INT", True),
                          ColumnDef("c", "TEXT"))
        indexed.add_index("idx", "c")
        plain = _schema(ColumnDef("id", "INT", True),
                        ColumnDef("c", "TEXT"))
        assert indexed.row_width_bytes() > plain.row_width_bytes()


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        schema = _schema(ColumnDef("id", "INT", True))
        catalog.create_table(schema)
        assert catalog.table("t") is schema
        assert catalog.has_table("t")
        assert catalog.table_names() == ("t",)

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.create_table(_schema(ColumnDef("id", "INT", True)))
        with pytest.raises(SchemaError):
            catalog.create_table(_schema(ColumnDef("id", "INT", True)))

    def test_unknown_table_raises(self):
        with pytest.raises(SchemaError):
            Catalog().table("ghost")

    def test_get_returns_none_for_unknown(self):
        assert Catalog().get("ghost") is None
