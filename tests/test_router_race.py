"""Router-crash races against a live handover (satellite 3).

Property-style crash-offset sweep in the spirit of
``test_handover_race.py``: a clean probe run measures the migration
window (start of the migration span to end of the handover phase), then
the router shard carrying half the clients is crashed at evenly spaced
instants across that window — including mid-drain, while BEGINs are
parked router-side and the middleware gate is closed.  At every offset:

* exactly one routing owner,
* zero lost acknowledged requests — every increment the client saw
  commit is present on the final owner,
* no duplicate replies — effects beyond the acknowledged ones are
  bounded (two-sided) by the replies provably dropped in the dead
  shard's buffers,
* seeded determinism — the same offset replayed with the same seeds
  produces the identical final state and counters.
"""

from __future__ import annotations

import pytest

from repro.core import MigrationOptions, SnapshotStrategy
from repro.obs.trace import PHASE
from repro.router import RouterConfig, RouterFleet
from repro.sim import Environment
from repro.workload.simplekv import (
    KvWorkloadConfig,
    run_kv_clients,
    setup_kv_tenant,
)

from test_fault_tolerance import RATES, build

WRITES_PER_TXN = 2

#: Crash instants as fractions of the probed migration window,
#: strictly inside (0, 1); the later fractions land in the handover
#: drain for the serial strategy (drain dominates its tail).
SWEEP = (0.1, 0.3, 0.5, 0.7, 0.85, 0.97)


def _build_routed(env, *, shards=2, seed=7):
    cluster, middleware = build(env, nodes=2)
    fleet = RouterFleet(env, middleware, shards=shards,
                        config=RouterConfig(park_timeout=120.0),
                        seed=seed)
    return cluster, middleware, fleet


def _seed_routed_tenant(env, cluster, middleware, fleet, *, keys=24,
                        overhead_mb=4.0, clients=4, txns=150,
                        think_time=0.05, seed=11):
    holder = {}

    def setup(env):
        yield from setup_kv_tenant(cluster.node("node0").instance, "A",
                                   keys)
        cluster.node("node0").instance.tenant(
            "A").fixed_overhead_mb = overhead_mb
        middleware.register_tenant("A", "node0")
        config = KvWorkloadConfig(keys=keys, clients=clients,
                                  transactions_per_client=txns,
                                  writes_per_txn=WRITES_PER_TXN,
                                  think_time=think_time)
        holder["workload"] = run_kv_clients(env, fleet, "A", config,
                                            seed=seed)
    env.process(setup(env))
    while "workload" not in holder:
        env.run(until=env.now + 0.05)
    env.run(until=env.now + 0.05)
    return holder["workload"]


def _launch_migration(env, middleware, strategy):
    holder = {}

    def main(env):
        holder["report"] = yield from middleware.migrate(
            "A", "node1",
            MigrationOptions(rates=RATES, chunk_mb=1.0,
                             strategy=strategy))
    env.process(main(env))
    return holder


def _migration_window(middleware):
    """(migration start, handover end) from the probe run's trace."""
    start = None
    for span in middleware.tracer.spans:
        if span.name == "migration":
            start = span.start
            break
    handover_end = None
    for span in middleware.tracer.spans:
        if span.kind == PHASE and span.name == "handover":
            handover_end = span.end
    assert start is not None and handover_end is not None
    return start, handover_end


def _final_values(cluster, middleware, keys):
    owner = middleware.route("A")
    table = cluster.node(owner).instance.tenant("A").table("kv")
    return {key: table.chain(key).latest()["v"] for key in range(keys)}


def _run_probe(strategy):
    env = Environment()
    cluster, middleware, fleet = _build_routed(env)
    _seed_routed_tenant(env, cluster, middleware, fleet)
    holder = _launch_migration(env, middleware, strategy)
    env.run()
    assert holder["report"].outcome == "ok"
    return _migration_window(middleware)


@pytest.fixture(scope="module")
def serial_window():
    return _run_probe(SnapshotStrategy.SERIAL)


def _counter(middleware, name):
    instrument = middleware.metrics.get(name)
    return instrument.value if instrument is not None else 0


def _run_crash_point(crash_at, strategy, keys=24):
    """Crash shard router0 at ``crash_at``; return the run's outcome."""
    env = Environment()
    cluster, middleware, fleet = _build_routed(env)
    workload = _seed_routed_tenant(env, cluster, middleware, fleet,
                                   keys=keys)
    holder = _launch_migration(env, middleware, strategy)
    env.run(until=crash_at)
    assert "report" not in holder, \
        "crash offset %.3f missed the migration" % crash_at
    fleet.shard("router0").crash()
    env.run()

    # The migration itself is untouched by a router crash: the router
    # tier sits *in front of* the middleware.
    assert holder["report"].outcome == "ok"
    assert len(middleware.owners("A")) == 1
    assert middleware.owners("A") == ["node1"]

    actual = _final_values(cluster, middleware, keys)
    counted = workload.committed_increments
    dropped = _counter(middleware, "router.acks_dropped")

    # Zero lost acknowledged requests: every increment the client was
    # told committed is on the owner, at every key.
    for key in range(keys):
        assert actual[key] >= counted.get(key, 0), \
            "key %d lost an acked increment at offset %.3f" \
            % (key, crash_at)
    # No duplicate replies / phantom effects: every effect beyond the
    # acks is accounted for by a COMMIT whose reply died in the shard's
    # buffers — at most WRITES_PER_TXN increments each (a dropped
    # read-only COMMIT contributes zero, so there is no lower bound).
    surplus = sum(actual[key] - counted.get(key, 0)
                  for key in range(keys))
    assert 0 <= surplus <= WRITES_PER_TXN * dropped, \
        "offset %.3f: surplus %d outside [0, %d]" \
        % (crash_at, surplus, WRITES_PER_TXN * dropped)
    # The crashed shard's clients moved to the survivor.
    assert _counter(middleware, "router.reconnects") >= 1
    return actual, {
        "reconnects": _counter(middleware, "router.reconnects"),
        "acks_dropped": dropped,
        "stale_routes": _counter(middleware, "router.stale_routes"),
        "committed": workload.committed_txns,
        "aborted": workload.aborted_txns,
    }


@pytest.mark.parametrize("fraction", SWEEP)
def test_router_crash_swept_across_serial_migration(fraction,
                                                    serial_window):
    start, end = serial_window
    _run_crash_point(start + fraction * (end - start),
                     SnapshotStrategy.SERIAL)


def test_router_crash_mid_watermark_walk():
    start, end = _run_probe(SnapshotStrategy.WATERMARK)
    _run_crash_point(start + 0.5 * (end - start),
                     SnapshotStrategy.WATERMARK)


def test_sweep_is_seeded_deterministic(serial_window):
    start, end = serial_window
    crash_at = start + 0.5 * (end - start)
    first = _run_crash_point(crash_at, SnapshotStrategy.SERIAL)
    second = _run_crash_point(crash_at, SnapshotStrategy.SERIAL)
    assert first == second


def test_crash_mid_drain_with_parked_requests():
    # Pin one crash late in the migration (the drain-heavy tail) and
    # require that the run actually exercised router-side parking, so
    # the sweep's zero-lost-ack claim covers parked BEGINs dying with
    # their shard.
    env = Environment()
    cluster, middleware, fleet = _build_routed(env)
    workload = _seed_routed_tenant(env, cluster, middleware, fleet)
    holder = _launch_migration(env, middleware, SnapshotStrategy.SERIAL)

    def crasher(env):
        while not middleware.draining("A"):
            yield env.timeout(0.02)
        fleet.shard("router0").crash()
    env.process(crasher(env))
    env.run()
    assert holder["report"].outcome == "ok"
    assert len(middleware.owners("A")) == 1
    parked_events = [e for e in middleware.tracer.events
                     if e.name == "router.parked"]
    assert parked_events, "the drain never parked a BEGIN router-side"
    actual = _final_values(cluster, middleware, 24)
    for key in range(24):
        assert actual[key] >= workload.committed_increments.get(key, 0)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
