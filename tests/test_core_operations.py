"""Tests for middleware operation classification (TxnTracker) and the
mapping-function contract."""

import pytest

from repro.core import OpKind, TxnTracker, mapping_function_output
from repro.errors import SqlError


class TestClassification:
    def test_begin(self):
        tracker = TxnTracker()
        op = tracker.classify_text("BEGIN")
        assert op.kind == OpKind.BEGIN
        assert tracker.in_txn

    def test_first_read_then_reads(self):
        tracker = TxnTracker()
        tracker.classify_text("BEGIN")
        first = tracker.classify_text("SELECT v FROM t WHERE k = 1")
        second = tracker.classify_text("SELECT v FROM t WHERE k = 2")
        assert first.kind == OpKind.FIRST_READ
        assert second.kind == OpKind.READ

    def test_writes_after_first_read(self):
        tracker = TxnTracker()
        tracker.classify_text("BEGIN")
        tracker.classify_text("SELECT v FROM t WHERE k = 1")
        write = tracker.classify_text("UPDATE t SET v = 1 WHERE k = 1")
        assert write.kind == OpKind.WRITE
        assert tracker.is_update

    def test_commit_resets_state(self):
        tracker = TxnTracker()
        tracker.classify_text("BEGIN")
        tracker.classify_text("SELECT v FROM t WHERE k = 1")
        op = tracker.classify_text("COMMIT")
        assert op.kind == OpKind.COMMIT
        assert not tracker.in_txn
        assert not tracker.is_update

    def test_rollback_classified_as_abort(self):
        tracker = TxnTracker()
        tracker.classify_text("BEGIN")
        op = tracker.classify_text("ROLLBACK")
        assert op.kind == OpKind.ABORT

    def test_abort_synonym(self):
        tracker = TxnTracker()
        tracker.classify_text("BEGIN")
        assert tracker.classify_text("ABORT").kind == OpKind.ABORT

    def test_blind_first_write_becomes_first_operation(self):
        """Guard path: a leading write creates the snapshot too."""
        tracker = TxnTracker()
        tracker.classify_text("BEGIN")
        op = tracker.classify_text("UPDATE t SET v = 1 WHERE k = 1")
        assert op.kind == OpKind.FIRST_READ
        assert tracker.is_update

    def test_nested_begin_rejected(self):
        tracker = TxnTracker()
        tracker.classify_text("BEGIN")
        with pytest.raises(SqlError):
            tracker.classify_text("BEGIN")

    def test_autocommit_read_outside_txn(self):
        tracker = TxnTracker()
        op = tracker.classify_text("SELECT v FROM t WHERE k = 1")
        assert op.kind == OpKind.READ
        assert not tracker.in_txn

    def test_autocommit_write_outside_txn(self):
        tracker = TxnTracker()
        op = tracker.classify_text("UPDATE t SET v = 1 WHERE k = 1")
        assert op.kind == OpKind.WRITE

    def test_txn_labels_increase(self):
        tracker = TxnTracker()
        first = tracker.classify_text("BEGIN").txn_label
        tracker.classify_text("COMMIT")
        second = tracker.classify_text("BEGIN").txn_label
        assert second > first

    def test_label_carried_on_all_ops(self):
        tracker = TxnTracker()
        label = tracker.classify_text("BEGIN").txn_label
        read = tracker.classify_text("SELECT v FROM t WHERE k = 1")
        commit = tracker.classify_text("COMMIT")
        assert read.txn_label == label
        assert commit.txn_label == label

    def test_reset_clears_open_txn(self):
        tracker = TxnTracker()
        tracker.classify_text("BEGIN")
        tracker.reset()
        assert not tracker.in_txn

    def test_cpu_cost_attached(self):
        tracker = TxnTracker()
        tracker.classify_text("BEGIN")
        op = tracker.classify_text("SELECT v FROM t WHERE k = 1",
                                   cpu_cost=0.01)
        assert op.cpu_cost == 0.01

    def test_sync_relevance(self):
        tracker = TxnTracker()
        tracker.classify_text("BEGIN")
        first = tracker.classify_text("SELECT v FROM t WHERE k = 1")
        later = tracker.classify_text("SELECT v FROM t WHERE k = 2")
        write = tracker.classify_text("UPDATE t SET v = 1 WHERE k = 1")
        commit = tracker.classify_text("COMMIT")
        assert first.is_sync_relevant
        assert not later.is_sync_relevant
        assert write.is_sync_relevant
        assert commit.is_sync_relevant


class TestMappingFunction:
    """Definition 2 via the reference implementation."""

    def test_read_only_committed_maps_to_empty(self):
        output = mapping_function_output(
            ["first_read", "read", "commit"], committed=True,
            is_update=False)
        assert output == []

    def test_aborted_update_maps_to_empty(self):
        output = mapping_function_output(
            ["first_read", "write", "abort"], committed=False,
            is_update=True)
        assert output == []

    def test_committed_update_keeps_minimum_set(self):
        output = mapping_function_output(
            ["first_read", "read", "write", "read", "write", "commit"],
            committed=True, is_update=True)
        assert output == ["first_read", "write", "write", "commit"]

    def test_order_preserved(self):
        output = mapping_function_output(
            ["first_read", "write", "write", "commit"],
            committed=True, is_update=True)
        assert output == ["first_read", "write", "write", "commit"]

    def test_all_later_reads_discarded(self):
        kinds = ["first_read"] + ["read"] * 10 + ["write", "commit"]
        output = mapping_function_output(kinds, True, True)
        assert output.count("read") == 0
        assert output[0] == "first_read"
