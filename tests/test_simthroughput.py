"""Tests for the simthroughput bench scenario and its CI perf gate."""

import importlib.util
import json
import os

import pytest

from repro import cli
from repro.experiments import bench, get_profile
from repro.experiments.simthroughput import (SimThroughputResult, render,
                                             run_scenario)

SMOKE = get_profile("smoke")

REQUIRED_CASES = ("kernel_ping_pong", "parser_replay", "mvcc_read",
                  "engine_point_select", "migration_e2e")


@pytest.fixture(scope="module")
def result():
    return run_scenario(SMOKE)


class TestRunScenario:
    def test_all_required_cases_present(self, result):
        assert [c.case for c in result.cases] == list(REQUIRED_CASES)

    def test_rates_are_positive(self, result):
        for case in result.cases:
            assert case.operations > 0, case.case
            assert case.wall_seconds > 0, case.case
            assert case.throughput > 0, case.case

    def test_to_dict_schema(self, result):
        data = result.to_dict()
        assert data["bench"] == "simthroughput"
        assert data["profile"] == "smoke"
        assert data["seed"] == SMOKE.seed
        for case in data["cases"]:
            for field in ("case", "metric", "operations",
                          "wall_seconds", "throughput", "detail"):
                assert field in case

    def test_no_paper_smoke_by_default(self, result):
        assert result.paper_smoke is None
        assert result.paper_smoke_ok is True

    def test_render_names_every_case(self, result):
        text = "\n".join(render(result))
        for name in REQUIRED_CASES:
            assert name in text


class TestBenchIntegration:
    def test_bench_run_writes_artifact(self, tmp_path):
        report = bench.run(SMOKE, scenarios=["simthroughput"],
                           bench_dir=str(tmp_path))
        path = tmp_path / "BENCH_simthroughput.json"
        assert path.exists()
        data = json.loads(path.read_text())
        assert data["bench"] == "simthroughput"
        assert {c["case"] for c in data["cases"]} == set(REQUIRED_CASES)
        assert "sim throughput" in report.text

    def test_paper_smoke_requires_simthroughput_scenario(self, capsys):
        with pytest.raises(SystemExit):
            cli.bench_main(["--scenario", "pipeline", "--paper-smoke"])
        capsys.readouterr()


def _load_check_bench():
    path = os.path.join(os.path.dirname(__file__), os.pardir,
                        "scripts", "check_bench.py")
    spec = importlib.util.spec_from_file_location("check_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCheckBenchGate:
    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        bench_dir = tmp_path_factory.mktemp("bench")
        bench.run(SMOKE, scenarios=["simthroughput"],
                  bench_dir=str(bench_dir))
        return str(bench_dir / "BENCH_simthroughput.json")

    def test_structural_pass(self, artifact, capsys):
        assert _load_check_bench().main([artifact]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_self_baseline_passes(self, artifact, capsys):
        """An artifact can never regress against itself."""
        code = _load_check_bench().main(
            [artifact, "--baseline", artifact,
             "--max-throughput-regression", "0.3"])
        capsys.readouterr()
        assert code == 0

    def test_regression_fails_the_gate(self, artifact, tmp_path, capsys):
        """A baseline with doubled rates means the PR halved throughput
        on every case — the gate must fail and name the cases."""
        data = json.loads(open(artifact).read())
        for case in data["cases"]:
            case["throughput"] *= 2.0
        baseline = tmp_path / "BENCH_simthroughput.json"
        baseline.write_text(json.dumps(data))
        code = _load_check_bench().main(
            [artifact, "--baseline", str(baseline),
             "--max-throughput-regression", "0.3"])
        out = capsys.readouterr().out
        assert code == 1
        for name in REQUIRED_CASES:
            assert name in out

    def test_new_case_without_baseline_is_skipped(self, artifact,
                                                  tmp_path, capsys):
        """A case the base commit doesn't know about can't regress."""
        data = json.loads(open(artifact).read())
        data["cases"] = [c for c in data["cases"]
                         if c["case"] != "migration_e2e"]
        baseline = tmp_path / "BENCH_simthroughput.json"
        baseline.write_text(json.dumps(data))
        code = _load_check_bench().main(
            [artifact, "--baseline", str(baseline)])
        capsys.readouterr()
        assert code == 0

    def test_blown_paper_smoke_budget_fails(self, artifact, tmp_path,
                                            capsys):
        data = json.loads(open(artifact).read())
        data["paper_smoke"] = {"wall_seconds": 999.0,
                               "budget_seconds": 300.0,
                               "within_budget": False,
                               "events_processed": 123}
        broken = tmp_path / "BENCH_simthroughput_smoke.json"
        broken.write_text(json.dumps(data))
        code = _load_check_bench().main([str(broken)])
        out = capsys.readouterr().out
        assert code == 1
        assert "budget" in out
