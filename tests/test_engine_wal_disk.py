"""Tests for the simulated disk, WAL group commit, and checkpointer."""

import pytest

from repro.engine.checkpoint import Checkpointer, CheckpointSpec
from repro.engine.disk import Disk, DiskSpec
from repro.engine.wal import WalWriter
from repro.sim import Environment

from _helpers import drive, drive_all


class TestDisk:
    def test_fsync_latency(self, env):
        disk = Disk(env)

        def proc(env):
            yield from disk.fsync()
            return env.now
        assert drive(env, proc(env)) == pytest.approx(
            disk.spec.fsync_latency)

    def test_fsync_counts(self, env):
        disk = Disk(env)

        def proc(env):
            yield from disk.fsync()
            yield from disk.fsync()
        drive(env, proc(env))
        assert disk.fsyncs == 2

    def test_read_time_scales_with_size(self, env):
        disk = Disk(env, DiskSpec(seek_latency=0.0,
                                  read_bandwidth_mb_s=100.0))

        def proc(env):
            yield from disk.read(50.0)
            return env.now
        assert drive(env, proc(env)) == pytest.approx(0.5)

    def test_head_serialises_requests(self, env):
        disk = Disk(env, DiskSpec(seek_latency=0.0, fsync_latency=1.0))
        times = []

        def proc(env):
            yield from disk.fsync()
            times.append(env.now)
        env.process(proc(env))
        env.process(proc(env))
        env.run()
        assert times == [1.0, 2.0]

    def test_byte_accounting(self, env):
        disk = Disk(env)

        def proc(env):
            yield from disk.write(2.0)
            yield from disk.read(3.0)
        drive(env, proc(env))
        assert disk.bytes_written == pytest.approx(2e6)
        assert disk.bytes_read == pytest.approx(3e6)


class TestGroupCommit:
    def test_single_commit_single_flush(self, env):
        disk = Disk(env)
        wal = WalWriter(env, disk)

        def proc(env):
            yield wal.commit()
            return env.now
        drive(env, proc(env))
        assert wal.commit_count == 1
        assert wal.flush_count == 1

    def test_concurrent_commits_grouped(self, env):
        """Commits arriving while a flush is in flight share the next
        flush — the group-commit effect Madeus exploits."""
        disk = Disk(env, DiskSpec(fsync_latency=0.010))
        wal = WalWriter(env, disk)

        def committer(env, delay):
            yield env.timeout(delay)
            yield wal.commit()
        # first commit flushes alone; five more arrive during its flush
        generators = [committer(env, 0.0)]
        generators += [committer(env, 0.002 + i * 0.001)
                       for i in range(5)]
        drive_all(env, *generators)
        assert wal.commit_count == 6
        assert wal.flush_count == 2
        assert wal.largest_group == 5
        assert wal.mean_group_size == pytest.approx(3.0)

    def test_group_commit_disabled_flushes_each(self, env):
        disk = Disk(env, DiskSpec(fsync_latency=0.010))
        wal = WalWriter(env, disk, group_commit=False)

        def committer(env, delay):
            yield env.timeout(delay)
            yield wal.commit()
        drive_all(env, *[committer(env, 0.001 * i) for i in range(4)])
        assert wal.flush_count == 4
        assert wal.mean_group_size == pytest.approx(1.0)

    def test_simultaneous_commits_one_fsync(self, env):
        disk = Disk(env, DiskSpec(fsync_latency=0.010))
        wal = WalWriter(env, disk)
        done_times = []

        def committer(env):
            yield wal.commit()
            done_times.append(env.now)
        for _i in range(8):
            env.process(committer(env))
        env.run()
        assert wal.flush_count == 1
        assert len(set(done_times)) == 1

    def test_group_commit_latency_not_worse_than_serial(self, env):
        """Grouped commits finish no later than serially flushed ones."""
        spec = DiskSpec(fsync_latency=0.010)

        def run(group):
            local = Environment()
            wal = WalWriter(local, Disk(local, spec), group_commit=group)
            finish = []

            def committer(local_env):
                yield wal.commit()
                finish.append(local_env.now)
            for _i in range(10):
                local.process(committer(local))
            local.run()
            return max(finish)
        assert run(True) <= run(False)

    def test_mean_group_size_zero_before_any_flush(self, env):
        wal = WalWriter(env, Disk(env))
        assert wal.mean_group_size == 0.0


class TestCheckpointerObs:
    def test_bound_metrics_mirror_checkpoint_activity(self, env):
        from repro.obs import MetricsRegistry, Tracer
        disk = Disk(env)
        spec = CheckpointSpec(interval=10.0, dirty_mb_per_commit=1.0,
                              min_burst_mb=2.0)
        ckpt = Checkpointer(env, disk, spec)
        metrics = MetricsRegistry()
        tracer = Tracer(env)
        ckpt.bind_obs(metrics, "node0.checkpoint", tracer=tracer)
        ckpt.note_commit(count=8)
        assert metrics.gauge("node0.checkpoint.dirty_mb").value == \
            pytest.approx(8.0)
        env.run(until=25)
        ckpt.stop()
        env.run()
        assert metrics.counter("node0.checkpoint.count").value == 2
        assert metrics.counter(
            "node0.checkpoint.flushed_mb").value == pytest.approx(10.0)
        burst = metrics.histogram("node0.checkpoint.burst_s")
        assert burst.count == 2
        assert burst.max > 0
        spans = [s for s in tracer.spans if s.name == "checkpoint"]
        assert len(spans) == 2
        assert all(s.end is not None for s in spans)
        assert spans[0].attrs["flush_mb"] == pytest.approx(8.0)

    def test_unbound_checkpointer_stays_silent(self, env):
        disk = Disk(env)
        ckpt = Checkpointer(env, disk, CheckpointSpec(interval=5.0))
        ckpt.note_commit()
        env.run(until=6)
        ckpt.stop()
        env.run()
        assert ckpt.checkpoints == 1


class TestCheckpointer:
    def test_checkpoints_fire_on_interval(self, env):
        disk = Disk(env)
        ckpt = Checkpointer(env, disk, CheckpointSpec(interval=10.0))
        env.run(until=35)
        ckpt.stop()
        assert ckpt.checkpoints == 3

    def test_burst_grows_with_dirty_pages(self, env):
        disk = Disk(env)
        spec = CheckpointSpec(interval=10.0, dirty_mb_per_commit=1.0,
                              min_burst_mb=2.0)
        ckpt = Checkpointer(env, disk, spec)
        ckpt.note_commit(count=50)
        env.run(until=11)
        ckpt.stop()
        env.run()
        assert ckpt.total_flushed_mb == pytest.approx(50.0)

    def test_min_burst_applies_when_idle(self, env):
        disk = Disk(env)
        spec = CheckpointSpec(interval=10.0, min_burst_mb=4.0)
        ckpt = Checkpointer(env, disk, spec)
        env.run(until=11)
        ckpt.stop()
        env.run()
        assert ckpt.total_flushed_mb == pytest.approx(4.0)

    def test_checkpoint_delays_concurrent_fsync(self, env):
        """A commit arriving mid-checkpoint queues behind the burst —
        the latency 'whisker' of Figures 7/8."""
        disk = Disk(env, DiskSpec(fsync_latency=0.001,
                                  write_bandwidth_mb_s=10.0,
                                  seek_latency=0.0))
        spec = CheckpointSpec(interval=1.0, min_burst_mb=10.0,
                              chunk_mb=10.0)
        ckpt = Checkpointer(env, disk, spec)
        wal = WalWriter(env, disk)
        times = []

        def committer(env):
            yield env.timeout(1.1)  # checkpoint burst runs [1.0, 2.0]
            yield wal.commit()
            times.append(env.now)
        env.process(committer(env))
        env.run(until=3)
        ckpt.stop()
        assert times and times[0] > 1.9
