"""Tests for the mini-SQL tokenizer, parser, and AST."""

import pytest

from repro.engine.sqlmini import (AlterTable, Begin, BinaryOp, ColumnRef,
                                  Commit, Comparison, CreateIndex,
                                  CreateTable, Delete, Insert, Literal,
                                  Rollback, Select, Update,
                                  is_read_statement, is_write_statement,
                                  parse, tokenize)
from repro.errors import SqlError


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_preserve_case(self):
        tokens = tokenize("MyTable")
        assert tokens[0].kind == "name"
        assert tokens[0].text == "MyTable"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert [(t.kind, t.text) for t in tokens[:-1]] == [
            ("number", "42"), ("number", "3.14")]

    def test_string_literal(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].kind == "string"
        assert tokens[0].text == "hello world"

    def test_escaped_quote_in_string(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].text == "it's"

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlError, match="unterminated"):
            tokenize("'oops")

    def test_two_char_operators(self):
        tokens = tokenize("a >= 1 AND b <= 2 AND c != 3 AND d <> 4")
        ops = [t.text for t in tokens if t.kind == "punct"]
        assert ops == [">=", "<=", "!=", "<>"]

    def test_unexpected_character_raises(self):
        with pytest.raises(SqlError, match="unexpected"):
            tokenize("SELECT @ FROM t")

    def test_semicolons_ignored(self):
        statement = parse("COMMIT;")
        assert isinstance(statement, Commit)

    def test_end_token_present(self):
        tokens = tokenize("COMMIT")
        assert tokens[-1].kind == "end"


class TestTransactionStatements:
    def test_begin(self):
        assert isinstance(parse("BEGIN"), Begin)

    def test_commit(self):
        assert isinstance(parse("COMMIT"), Commit)

    def test_rollback(self):
        assert isinstance(parse("ROLLBACK"), Rollback)

    def test_abort_synonym(self):
        assert isinstance(parse("ABORT"), Rollback)


class TestSelect:
    def test_star_projection(self):
        statement = parse("SELECT * FROM item")
        assert statement == Select("item", ())

    def test_column_projection(self):
        statement = parse("SELECT a, b FROM t")
        assert statement.columns == ("a", "b")

    def test_where_equality(self):
        statement = parse("SELECT a FROM t WHERE id = 5")
        assert statement.where == (Comparison("id", "=", 5),)

    def test_where_conjunction(self):
        statement = parse("SELECT a FROM t WHERE x = 1 AND y >= 2.5")
        assert statement.where == (Comparison("x", "=", 1),
                                   Comparison("y", ">=", 2.5))

    def test_where_string_literal(self):
        statement = parse("SELECT a FROM t WHERE name = 'bob'")
        assert statement.where[0].value == "bob"

    def test_not_equal_normalised(self):
        statement = parse("SELECT a FROM t WHERE x <> 3")
        assert statement.where[0].op == "!="

    def test_order_by_default_ascending(self):
        statement = parse("SELECT a FROM t ORDER BY a")
        assert statement.order_by == "a"
        assert statement.descending is False

    def test_order_by_desc(self):
        statement = parse("SELECT a FROM t ORDER BY a DESC")
        assert statement.descending is True

    def test_order_by_explicit_asc(self):
        statement = parse("SELECT a FROM t ORDER BY a ASC")
        assert statement.descending is False

    def test_limit(self):
        statement = parse("SELECT a FROM t LIMIT 10")
        assert statement.limit == 10

    def test_negative_limit_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT a FROM t LIMIT -1")

    def test_full_combination(self):
        statement = parse("SELECT a, b FROM t WHERE x = 1 "
                          "ORDER BY b DESC LIMIT 5")
        assert statement.table == "t"
        assert statement.limit == 5

    def test_is_read_statement(self):
        assert is_read_statement(parse("SELECT a FROM t"))
        assert not is_write_statement(parse("SELECT a FROM t"))


class TestInsert:
    def test_basic(self):
        statement = parse("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert statement == Insert("t", ("a", "b"), (1, "x"))

    def test_null_value(self):
        statement = parse("INSERT INTO t (a) VALUES (NULL)")
        assert statement.values == (None,)

    def test_negative_number(self):
        statement = parse("INSERT INTO t (a) VALUES (-5)")
        assert statement.values == (-5,)

    def test_float_value(self):
        statement = parse("INSERT INTO t (a) VALUES (2.75)")
        assert statement.values == (2.75,)

    def test_arity_mismatch_raises(self):
        with pytest.raises(SqlError, match="arity"):
            parse("INSERT INTO t (a, b) VALUES (1)")

    def test_is_write_statement(self):
        assert is_write_statement(parse("INSERT INTO t (a) VALUES (1)"))


class TestUpdate:
    def test_literal_assignment(self):
        statement = parse("UPDATE t SET a = 5 WHERE id = 1")
        assert statement.assignments == (("a", Literal(5)),)

    def test_column_arithmetic(self):
        statement = parse("UPDATE t SET a = a + 1 WHERE id = 1")
        column, expression = statement.assignments[0]
        assert expression == BinaryOp("+", ColumnRef("a"), Literal(1))

    def test_multiple_assignments(self):
        statement = parse("UPDATE t SET a = 1, b = 'x' WHERE id = 2")
        assert len(statement.assignments) == 2

    def test_subtraction_expression(self):
        statement = parse("UPDATE t SET stock = stock - 3 WHERE id = 9")
        _col, expression = statement.assignments[0]
        assert expression.op == "-"

    def test_multiplication_precedence(self):
        statement = parse("UPDATE t SET a = b + 2 * 3 WHERE id = 1")
        _col, expression = statement.assignments[0]
        assert expression.op == "+"
        assert expression.right == BinaryOp("*", Literal(2), Literal(3))

    def test_parenthesised_expression(self):
        statement = parse("UPDATE t SET a = (b + 2) * 3 WHERE id = 1")
        _col, expression = statement.assignments[0]
        assert expression.op == "*"

    def test_no_where_allowed(self):
        statement = parse("UPDATE t SET a = 1")
        assert statement.where == ()


class TestDelete:
    def test_with_where(self):
        statement = parse("DELETE FROM t WHERE id = 3")
        assert statement == Delete("t", (Comparison("id", "=", 3),))

    def test_without_where(self):
        assert parse("DELETE FROM t") == Delete("t", ())


class TestDdl:
    def test_create_table(self):
        statement = parse("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        assert isinstance(statement, CreateTable)
        assert statement.columns[0].primary_key
        assert statement.columns[1].type_name == "TEXT"

    def test_create_index(self):
        statement = parse("CREATE INDEX idx ON t (col)")
        assert statement == CreateIndex("idx", "t", "col")

    def test_alter_table_add_column(self):
        statement = parse("ALTER TABLE t ADD COLUMN extra INT")
        assert isinstance(statement, AlterTable)
        assert statement.column.name == "extra"

    def test_alter_without_column_keyword(self):
        statement = parse("ALTER TABLE t ADD extra INT")
        assert statement.column.name == "extra"

    def test_create_without_kind_raises(self):
        with pytest.raises(SqlError):
            parse("CREATE VIEW v")

    def test_ddl_is_write(self):
        assert is_write_statement(parse("CREATE INDEX i ON t (c)"))


class TestErrors:
    def test_empty_statement(self):
        with pytest.raises(SqlError):
            parse("")

    def test_unknown_statement(self):
        # GRANT is not a keyword of the dialect, so it fails as a
        # non-keyword statement head.
        with pytest.raises(SqlError):
            parse("GRANT ALL")
        # WHERE is a keyword but cannot head a statement.
        with pytest.raises(SqlError, match="unsupported"):
            parse("WHERE x = 1")

    def test_statement_starting_with_name(self):
        with pytest.raises(SqlError):
            parse("foo bar")

    def test_trailing_garbage(self):
        with pytest.raises(SqlError, match="trailing"):
            parse("COMMIT COMMIT")

    def test_missing_from(self):
        with pytest.raises(SqlError):
            parse("SELECT a WHERE x = 1")

    def test_bad_comparison_operator(self):
        with pytest.raises(SqlError):
            parse("SELECT a FROM t WHERE x LIKE 'y'")

    def test_where_requires_literal_rhs(self):
        with pytest.raises(SqlError):
            parse("SELECT a FROM t WHERE x = y")


class TestParseMemoisation:
    """``parse`` is memoised on the SQL text; safe because every AST
    node is a frozen dataclass and nothing mutates statements."""

    def test_same_text_returns_the_cached_object(self):
        first = parse("SELECT id FROM items WHERE id = 1")
        second = parse("SELECT id FROM items WHERE id = 1")
        assert first is second

    def test_cache_clear_reparses(self):
        sql = "SELECT cost FROM items WHERE id = 2"
        first = parse(sql)
        parse.cache_clear()
        second = parse(sql)
        assert first is not second
        assert first == second

    def test_distinct_spellings_are_distinct_entries(self):
        lower = parse("select id from items where id = 3")
        upper = parse("SELECT id FROM items WHERE id = 3")
        assert lower is not upper
        # Keywords are case-insensitive, so the ASTs still agree.
        assert lower == upper

    def test_classification_of_cached_statements(self):
        assert is_read_statement(parse("SELECT a FROM t"))
        assert not is_write_statement(parse("SELECT a FROM t"))
        assert is_write_statement(
            parse("INSERT INTO t (a) VALUES (1)"))
        assert is_write_statement(
            parse("UPDATE t SET a = 2 WHERE a = 1"))
        assert is_write_statement(parse("DELETE FROM t WHERE a = 1"))
        for sql in ("BEGIN", "COMMIT", "ROLLBACK"):
            statement = parse(sql)
            assert not is_read_statement(statement)
            assert not is_write_statement(statement)
