"""Unit tests for the lock table, the simple KV workload, and the
exception hierarchy."""

import pytest

from repro.cluster import Cluster
from repro.core import MADEUS, Middleware, MiddlewareConfig
from repro.engine import DbmsInstance, TenantDatabase
from repro.engine.locks import LockTable
from repro.engine.transaction import Transaction, TxnStatus
from repro.errors import (CatchUpTimeout, MigrationError, ReproError,
                          RoutingError, SchemaError, SqlError,
                          TransactionAborted)
from repro.sim import Environment
from repro.workload.simplekv import (KvWorkloadConfig, run_kv_clients,
                                     setup_kv_tenant)

from _helpers import drive


class TestLockTable:
    def _txn(self):
        return Transaction("T", 0.0)

    def test_first_acquire_granted_immediately(self, env):
        locks = LockTable(env)
        txn = self._txn()
        event = locks.try_acquire(txn, ("t", 1))
        assert event.triggered and event.ok
        assert locks.holder(("t", 1)) is txn

    def test_reentrant_acquire(self, env):
        locks = LockTable(env)
        txn = self._txn()
        locks.try_acquire(txn, ("t", 1))
        again = locks.try_acquire(txn, ("t", 1))
        assert again.triggered and again.ok

    def test_conflicting_acquire_waits(self, env):
        locks = LockTable(env)
        holder, waiter = self._txn(), self._txn()
        locks.try_acquire(holder, ("t", 1))
        event = locks.try_acquire(waiter, ("t", 1))
        assert not event.triggered
        assert locks.conflicts == 1
        assert waiter.waiting_on == ("t", 1)

    def test_commit_aborts_waiters(self, env):
        locks = LockTable(env)
        holder, waiter = self._txn(), self._txn()
        locks.try_acquire(holder, ("t", 1))
        event = locks.try_acquire(waiter, ("t", 1))

        def observe(env):
            try:
                yield event
            except TransactionAborted as exc:
                return str(exc)
        locks.release_all(holder, committed=True)
        message = drive(env, observe(env))
        assert "first-updater-wins" in message
        assert locks.wait_aborts == 1
        assert locks.holder(("t", 1)) is None

    def test_abort_grants_next_waiter(self, env):
        locks = LockTable(env)
        holder, waiter = self._txn(), self._txn()
        locks.try_acquire(holder, ("t", 1))
        event = locks.try_acquire(waiter, ("t", 1))
        locks.release_all(holder, committed=False)

        def observe(env):
            yield event
            return locks.holder(("t", 1))
        assert drive(env, observe(env)) is waiter
        assert ("t", 1) in waiter.held_locks

    def test_withdrawn_waiter_removed(self, env):
        locks = LockTable(env)
        holder, waiter = self._txn(), self._txn()
        locks.try_acquire(holder, ("t", 1))
        locks.try_acquire(waiter, ("t", 1))
        # the waiter itself aborts (e.g. client rollback while queued)
        locks.release_all(waiter, committed=False)
        assert locks.waiter_count() == 0
        # the holder's later commit aborts nobody
        locks.release_all(holder, committed=True)
        assert locks.wait_aborts == 0

    def test_lock_counts(self, env):
        locks = LockTable(env)
        txn = self._txn()
        locks.try_acquire(txn, ("t", 1))
        locks.try_acquire(txn, ("t", 2))
        assert locks.lock_count() == 2
        locks.release_all(txn, committed=True)
        assert locks.lock_count() == 0


class TestTransactionObject:
    def test_initial_state(self):
        txn = Transaction("T", 1.5)
        assert txn.is_active
        assert not txn.is_update
        assert txn.snapshot_csn is None

    def test_record_write_tracks_order(self):
        txn = Transaction("T", 0.0)
        txn.record_write(("t", 2), {"v": 1})
        txn.record_write(("t", 1), {"v": 2})
        txn.record_write(("t", 2), {"v": 3})  # overwrite
        assert txn.write_order == [("t", 2), ("t", 1)]
        assert txn.writes[("t", 2)] == {"v": 3}
        assert txn.is_update

    def test_own_write_lookup(self):
        txn = Transaction("T", 0.0)
        txn.record_write(("t", 1), None)
        written, value = txn.own_write(("t", 1))
        assert written and value is None
        written, _value = txn.own_write(("t", 9))
        assert not written

    def test_require_active_raises_after_commit(self):
        from repro.errors import InvalidTransactionState
        txn = Transaction("T", 0.0)
        txn.status = TxnStatus.COMMITTED
        with pytest.raises(InvalidTransactionState):
            txn.require_active()


class TestSimpleKvWorkload:
    def test_workload_counters_consistent(self, env):
        cluster = Cluster(env)
        cluster.add_node("n0")
        middleware = Middleware(env, cluster,
                                MiddlewareConfig(policy=MADEUS))

        def main(env):
            yield from setup_kv_tenant(cluster.node("n0").instance, "A",
                                       20)
            middleware.register_tenant("A", "n0")
        drive(env, main(env))
        config = KvWorkloadConfig(keys=20, clients=4,
                                  transactions_per_client=30,
                                  think_time=0.005)
        result = run_kv_clients(env, middleware, "A", config, seed=5)
        env.run()
        total = (result.committed_txns + result.read_only_txns
                 + result.aborted_txns)
        assert total == 4 * 30
        assert sum(result.committed_increments.values()) > 0

    def test_increments_match_database(self, env):
        cluster = Cluster(env)
        cluster.add_node("n0")
        middleware = Middleware(env, cluster,
                                MiddlewareConfig(policy=MADEUS))

        def main(env):
            yield from setup_kv_tenant(cluster.node("n0").instance, "A",
                                       10)
            middleware.register_tenant("A", "n0")
        drive(env, main(env))
        config = KvWorkloadConfig(keys=10, clients=5,
                                  transactions_per_client=40,
                                  read_only_ratio=0.2, think_time=0.002)
        result = run_kv_clients(env, middleware, "A", config, seed=8)
        env.run()
        table = cluster.node("n0").instance.tenant("A").table("kv")
        for key in range(10):
            expected = result.committed_increments.get(key, 0)
            assert table.chain(key).latest()["v"] == expected

    def test_deterministic_across_runs(self):
        def run_once():
            env = Environment()
            cluster = Cluster(env)
            cluster.add_node("n0")
            middleware = Middleware(env, cluster,
                                    MiddlewareConfig(policy=MADEUS))

            def main(env):
                yield from setup_kv_tenant(
                    cluster.node("n0").instance, "A", 10)
                middleware.register_tenant("A", "n0")
            drive(env, main(env))
            config = KvWorkloadConfig(keys=10, clients=3,
                                      transactions_per_client=20,
                                      think_time=0.004)
            result = run_kv_clients(env, middleware, "A", config, seed=4)
            env.run()
            return (result.committed_txns, result.aborted_txns,
                    dict(result.committed_increments))
        assert run_once() == run_once()


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc_type", [
        SqlError, SchemaError, TransactionAborted, MigrationError,
        CatchUpTimeout, RoutingError])
    def test_all_derive_from_repro_error(self, exc_type):
        if exc_type is CatchUpTimeout:
            instance = exc_type("m", backlog=1, elapsed=2.0)
        elif exc_type is TransactionAborted:
            instance = exc_type("reason")
        else:
            instance = exc_type("m")
        assert isinstance(instance, ReproError)

    def test_catchup_timeout_carries_diagnostics(self):
        exc = CatchUpTimeout("slow", backlog=42, elapsed=7.5)
        assert exc.backlog == 42
        assert exc.elapsed == 7.5

    def test_transaction_aborted_reason(self):
        exc = TransactionAborted("conflict on row 5")
        assert exc.reason == "conflict on row 5"


class TestTenantDatabase:
    def test_fingerprint_reflects_latest_state(self, env):
        from repro.engine.schema import TableSchema
        from repro.engine.sqlmini import ColumnDef
        tenant = TenantDatabase("x", env)
        tenant.create_table(TableSchema("t", (
            ColumnDef("k", "INT", True), ColumnDef("v", "INT"))))
        table = tenant.table("t")
        table.install(1, 1, {"k": 1, "v": 10})
        table.install(1, 2, {"k": 1, "v": 20})
        fingerprint = tenant.state_fingerprint()
        assert fingerprint["t"][1] == (("k", 1), ("v", 20))

    def test_size_with_multiplier_and_overhead(self, env):
        from repro.engine.schema import TableSchema
        from repro.engine.sqlmini import ColumnDef
        tenant = TenantDatabase("x", env)
        tenant.create_table(TableSchema("t", (
            ColumnDef("k", "INT", True),)))
        tenant.table("t").install(1, 1, {"k": 1})
        base = tenant.size_bytes()
        tenant.size_multiplier = 10.0
        tenant.fixed_overhead_mb = 1.0
        assert tenant.size_bytes() == pytest.approx(base * 10 + 1e6)
