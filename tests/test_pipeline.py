"""Tests for the pipelined snapshot path: the Channel and ChunkFeed
plumbing, chunk-boundary edge cases of dump_stream/restore_stream, and
the pipelined-vs-serial equivalence + speedup at the middleware level."""

import pytest

from repro.core import ChunkFeed, MADEUS, Middleware, MiddlewareConfig, \
    MigrationOptions, states_equal
from repro.cluster import Cluster
from repro.engine import DbmsInstance, Session, SnapshotTruncated, \
    TransferRates, dump, dump_stream, restore, restore_stream
from repro.engine.dump import plan_chunks
from repro.errors import NodeCrashed
from repro.sim import CLOSED, Channel, Environment
from repro.workload.simplekv import setup_kv_tenant

from _helpers import drive

RATES = TransferRates(dump_mb_s=8.0, restore_mb_s=4.0, chunk_mb=4.0)


def _setup_tenant(env, instance, rows=20, size_mb=None):
    instance.create_tenant("T")

    def setup(env):
        s = Session(instance, "T")
        yield from s.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        yield from s.execute("CREATE INDEX idx_v ON kv (v)")
        for key in range(rows):
            yield from s.execute("BEGIN")
            yield from s.execute(
                "INSERT INTO kv (k, v) VALUES (%d, %d)" % (key, key % 7))
            yield from s.execute("COMMIT")
    drive(env, setup(env))
    if size_mb is not None:
        tenant = instance.tenant("T")
        tenant.size_multiplier = 0.0
        tenant.fixed_overhead_mb = size_mb


class TestChannel:
    def test_fifo_put_get(self, env):
        channel = Channel(env, capacity=4)

        def producer(env):
            for item in "abc":
                yield from channel.put(item)
            channel.close()

        def consumer(env):
            got = []
            while True:
                item = yield from channel.get()
                if item is CLOSED:
                    return got
                got.append(item)
        env.process(producer(env))
        got = drive(env, consumer(env))
        assert got == ["a", "b", "c"]

    def test_capacity_blocks_producer(self, env):
        channel = Channel(env, capacity=1)
        progress = []

        def producer(env):
            for item in range(3):
                yield from channel.put(item)
                progress.append((env.now, item))

        def slow_consumer(env):
            while len(progress) < 3 or len(channel._buffer):
                yield env.timeout(1.0)
                item = yield from channel.get()
                assert item is not CLOSED
        env.process(producer(env))
        drive(env, slow_consumer(env))
        # items 1 and 2 had to wait for a get() each
        assert progress[0][0] == 0.0
        assert progress[1][0] >= 1.0
        assert channel.put_wait_time > 0.0

    def test_fail_propagates_to_getter(self, env):
        channel = Channel(env, capacity=1)

        def consumer(env):
            with pytest.raises(NodeCrashed):
                yield from channel.get()
            return True

        def failer(env):
            yield env.timeout(0.5)
            channel.fail(NodeCrashed("n", "boom"))
        env.process(failer(env))
        assert drive(env, consumer(env)) is True

    def test_close_drains_remaining_items(self, env):
        channel = Channel(env, capacity=4)

        def proc(env):
            yield from channel.put("x")
            channel.close()
            first = yield from channel.get()
            second = yield from channel.get()
            return first, second
        assert drive(env, proc(env)) == ("x", CLOSED)


class TestChunkFeed:
    def test_broadcast_to_two_readers(self, env):
        feed = ChunkFeed(env, depth=2)
        readers = [feed.reader("a"), feed.reader("b")]

        def producer(env):
            for item in range(5):
                yield from feed.put(item)
            feed.close()

        def consume(reader):
            got = []
            while True:
                item = yield from reader.get()
                if item is CLOSED:
                    return got
                got.append(item)
        env.process(producer(env))
        first = env.process(consume(readers[0]))
        second = env.process(consume(readers[1]))
        env.run()
        assert first.value == list(range(5))
        assert second.value == list(range(5))

    def test_backpressure_tracks_slowest_active_reader(self, env):
        feed = ChunkFeed(env, depth=1)
        fast = feed.reader("fast")
        slow = feed.reader("slow")
        emitted = []

        def producer(env):
            for item in range(4):
                yield from feed.put(item)
                emitted.append(env.now)
            feed.close()

        def fast_consumer(env):
            while (yield from fast.get()) is not CLOSED:
                pass

        def slow_consumer(env):
            while True:
                yield env.timeout(1.0)
                if (yield from slow.get()) is CLOSED:
                    return
        env.process(producer(env))
        env.process(fast_consumer(env))
        env.process(slow_consumer(env))
        env.run()
        # the slow reader paces the producer: ~1 emit per second
        assert emitted[-1] >= 2.0
        assert feed.producer_wait_time > 0.0

    def test_closed_reader_stops_counting(self, env):
        feed = ChunkFeed(env, depth=1)
        live = feed.reader("live")
        dead = feed.reader("dead")
        dead.close()

        def producer(env):
            for item in range(3):
                yield from feed.put(item)
            feed.close()

        def consumer(env):
            got = []
            while True:
                item = yield from live.get()
                if item is CLOSED:
                    return got
                got.append(item)
        env.process(producer(env))
        assert drive(env, consumer(env)) == [0, 1, 2]

    def test_put_raises_when_all_readers_gone(self, env):
        feed = ChunkFeed(env, depth=1)
        reader = feed.reader("r")
        reader.close()

        def producer(env):
            with pytest.raises(RuntimeError):
                yield from feed.put(0)
            return True
        assert drive(env, producer(env)) is True

    def test_rewind_rereads_retained_chunks(self, env):
        feed = ChunkFeed(env, depth=2)
        reader = feed.reader("r")

        def producer(env):
            for item in range(4):
                yield from feed.put(item)
            feed.close()

        def consumer(env):
            first = yield from reader.get()
            second = yield from reader.get()
            reader.rewind()
            replay = []
            while True:
                item = yield from reader.get()
                if item is CLOSED:
                    return (first, second, replay)
                replay.append(item)
        env.process(producer(env))
        first, second, replay = drive(env, consumer(env))
        assert (first, second) == (0, 1)
        assert replay == [0, 1, 2, 3]


class TestStreamEdges:
    def _stream_roundtrip(self, env, source, destination,
                          chunk_mb=None, rates=RATES):
        csn = source.current_csn()
        channel = Channel(env, capacity=4)
        env.process(dump_stream(source, "T", csn, rates, channel,
                                chunk_mb=chunk_mb))
        return drive(env, restore_stream(destination, channel, rates))

    def test_empty_tenant_streams_one_chunk(self, env):
        source = DbmsInstance(env, "src")
        destination = DbmsInstance(env, "dst")
        source.create_tenant("T")

        def schema_only(env):
            s = Session(source, "T")
            yield from s.execute(
                "CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        drive(env, schema_only(env))
        source.tenant("T").size_multiplier = 0.0
        source.tenant("T").fixed_overhead_mb = 0.0
        assert plan_chunks(source.tenant("T").size_mb(), 4.0) == 1
        name = self._stream_roundtrip(env, source, destination)
        assert name == "T"
        # schema arrived even though no data chunk carried rows
        assert destination.tenant("T").table("kv").live_row_count() == 0
        equal, differences = states_equal(source.tenant("T"),
                                          destination.tenant("T"))
        assert equal, differences

    def test_chunk_larger_than_tenant_gives_single_chunk(self, env):
        source = DbmsInstance(env, "src")
        destination = DbmsInstance(env, "dst")
        _setup_tenant(env, source, rows=12, size_mb=2.0)
        name = self._stream_roundtrip(env, source, destination,
                                      chunk_mb=64.0)
        assert name == "T"
        equal, differences = states_equal(source.tenant("T"),
                                          destination.tenant("T"))
        assert equal, differences

    def test_source_crash_between_chunks_raises(self, env):
        source = DbmsInstance(env, "src")
        _setup_tenant(env, source, rows=12, size_mb=16.0)
        csn = source.current_csn()
        channel = Channel(env, capacity=8)

        def crasher(env):
            # 16 MB at 8 MB/s = 2 s; crash mid-stream
            yield env.timeout(0.9)
            source.crash()

        def dumper(env):
            with pytest.raises(NodeCrashed):
                yield from dump_stream(source, "T", csn, RATES, channel)
            return True
        env.process(crasher(env))
        assert drive(env, dumper(env)) is True
        assert not channel.closed  # teardown is the caller's job

    def test_destination_crash_between_chunks_raises(self, env):
        source = DbmsInstance(env, "src")
        destination = DbmsInstance(env, "dst")
        _setup_tenant(env, source, rows=12, size_mb=16.0)
        csn = source.current_csn()
        channel = Channel(env, capacity=8)

        def crasher(env):
            yield env.timeout(2.5)  # restore of chunk 0 is underway
            destination.crash()

        def restorer(env):
            with pytest.raises(NodeCrashed):
                yield from restore_stream(destination, channel, RATES)
            return True
        env.process(dump_stream(source, "T", csn, RATES, channel))
        env.process(crasher(env))
        assert drive(env, restorer(env)) is True

    def test_truncated_stream_raises(self, env):
        source = DbmsInstance(env, "src")
        destination = DbmsInstance(env, "dst")
        _setup_tenant(env, source, rows=8, size_mb=16.0)
        csn = source.current_csn()

        class ListSink:
            def __init__(self):
                self.chunks = []

            def put(self, chunk):
                self.chunks.append(chunk)
                yield env.timeout(0)

            def close(self):
                pass

            def fail(self, exc):
                raise exc
        sink = ListSink()
        drive(env, dump_stream(source, "T", csn, RATES, sink))
        assert len(sink.chunks) >= 2
        channel = Channel(env, capacity=8)

        def feeder(env):
            # replay every chunk but the last, then claim end-of-stream
            for chunk in sink.chunks[:-1]:
                yield from channel.put(chunk)
            channel.close()

        def restorer(env):
            with pytest.raises(SnapshotTruncated):
                yield from restore_stream(destination, channel, RATES)
            return True
        env.process(feeder(env))
        assert drive(env, restorer(env)) is True


class TestStreamEquivalence:
    def test_stream_matches_serial_restore(self, env):
        source = DbmsInstance(env, "src")
        serial_dst = DbmsInstance(env, "serial")
        stream_dst = DbmsInstance(env, "stream")
        _setup_tenant(env, source, rows=30, size_mb=24.0)
        csn = source.current_csn()

        def serial(env):
            snapshot = yield from dump(source, "T", csn, RATES)
            yield from restore(serial_dst, snapshot, RATES)
        drive(env, serial(env))
        channel = Channel(env, capacity=4)
        env.process(dump_stream(source, "T", csn, RATES, channel))
        drive(env, restore_stream(stream_dst, channel, RATES))
        equal, differences = states_equal(serial_dst.tenant("T"),
                                          stream_dst.tenant("T"))
        assert equal, differences
        equal, differences = states_equal(source.tenant("T"),
                                          stream_dst.tenant("T"))
        assert equal, differences


class TestPipelinedMigration:
    def _migrate(self, strategy, size_mb=48.0, seed=11):
        env = Environment()
        cluster = Cluster(env)
        cluster.add_node("node0")
        cluster.add_node("node1")
        middleware = Middleware(env, cluster, MiddlewareConfig(
            policy=MADEUS, verify_consistency=True))
        holder = {}
        rates = TransferRates(dump_mb_s=8.0, restore_mb_s=4.0,
                              base_mb=16.0, chunk_mb=8.0)

        def main(env):
            yield from setup_kv_tenant(
                cluster.node("node0").instance, "A", 30)
            tenant = cluster.node("node0").instance.tenant("A")
            tenant.size_multiplier = 0.0
            tenant.fixed_overhead_mb = size_mb
            middleware.register_tenant("A", "node0")
            report = yield from middleware.migrate(
                "A", "node1", MigrationOptions(rates=rates,
                                               strategy=strategy))
            holder["report"] = report
        env.process(main(env))
        env.run()
        return holder["report"], cluster

    def test_pipelined_migration_is_consistent(self):
        report, cluster = self._migrate(strategy="pipelined")
        assert report.consistent is True, report.inconsistencies
        assert report.pipelined is True
        assert report.chunks >= 2
        master = cluster.node("node0").instance.tenant("A")
        slave = cluster.node("node1").instance.tenant("A")
        equal, differences = states_equal(master, slave)
        assert equal, differences

    def test_pipelined_beats_serial_above_base_mb(self):
        piped, _ = self._migrate(strategy="pipelined")
        serial, _ = self._migrate(strategy="serial")
        assert serial.consistent is True
        assert serial.pipelined is False and serial.chunks == 0
        assert piped.migration_time < serial.migration_time
        # dump+restore overlap: the pipelined wall clock must beat
        # serial by a real margin, not a rounding error
        assert piped.migration_time < serial.migration_time * 0.9
