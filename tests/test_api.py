"""Tests for the redesigned public API surface: the ``repro.api``
facade, MigrationOptions resolution, the retired ``migrate(tenant,
dst, rates)`` shim, the control-plane exports, the unified
retry/backoff/resume knob names, and the docstring-vs-``__all__``
sweep."""

import dataclasses
import re
import warnings

import pytest

import repro
import repro.api
from repro.cluster import Cluster
from repro.core import MADEUS, Middleware, MiddlewareConfig, \
    MigrationOptions
from repro.engine import TransferRates
from repro.sim import Environment
from repro.workload.simplekv import setup_kv_tenant

RATES = TransferRates(dump_mb_s=8.0, restore_mb_s=4.0, base_mb=16.0)

FACADE_NAMES = ("ClusterView", "MetricsRegistry", "Middleware",
                "MiddlewareConfig", "MigrationOptions",
                "MigrationReport", "MigrationScheduler",
                "QuantileHistogram", "RebalanceOptions",
                "RebalanceReport", "Rebalancer", "RouterConfig",
                "RouterFleet", "RouterShard", "ScheduleOptions",
                "ScheduleReport", "SnapshotStrategy", "TransferRates",
                "policy_by_name", "run_benchmark")

#: The knob names MigrationOptions / ScheduleOptions /
#: RebalanceOptions must all spell identically.
SHARED_KNOBS = ("retry_limit", "retry_base", "retry_cap", "resume")


class TestFacade:
    def test_facade_exports_every_documented_name(self):
        for name in FACADE_NAMES:
            assert hasattr(repro.api, name), name
        assert sorted(repro.api.__all__) == sorted(FACADE_NAMES)

    def test_every_exported_name_appears_in_the_docstring(self):
        # The module docstring is the API contract: every name in
        # __all__ must be documented there (as a :class:/:func: role),
        # and every promised name must actually be exported.
        documented = set(re.findall(r":(?:class|func|meth):`~?([\w.]+)`",
                                    repro.api.__doc__))
        documented = {name.split(".")[-1] for name in documented}
        for name in repro.api.__all__:
            assert name in documented, (
                "%r is exported but not documented in the repro.api "
                "docstring" % name)

    def test_facade_names_are_the_canonical_objects(self):
        from repro.core.middleware import Middleware as canonical
        assert repro.api.Middleware is canonical
        assert repro.api.MigrationOptions is MigrationOptions
        assert repro.api.TransferRates is TransferRates

    def test_facade_scheduler_names_are_the_canonical_objects(self):
        from repro.core.scheduler import MigrationScheduler as canonical
        assert repro.api.MigrationScheduler is canonical
        assert repro.api.ScheduleOptions is repro.ScheduleOptions
        assert repro.api.ScheduleReport is repro.ScheduleReport

    def test_facade_control_plane_names_are_canonical(self):
        from repro.control import Rebalancer as canonical
        from repro.obs.metrics import MetricsRegistry as registry
        assert repro.api.Rebalancer is canonical
        assert repro.api.RebalanceOptions is repro.RebalanceOptions
        assert repro.api.RebalanceReport is repro.RebalanceReport
        assert repro.api.ClusterView is repro.ClusterView
        assert repro.api.MetricsRegistry is registry

    def test_top_level_package_reexports_options(self):
        assert repro.MigrationOptions is MigrationOptions
        assert "MigrationOptions" in repro.__all__
        assert "MigrationScheduler" in repro.__all__
        assert "ScheduleOptions" in repro.__all__
        for name in ("Rebalancer", "RebalanceOptions",
                     "RebalanceReport", "ClusterView", "LoadWatcher",
                     "HotspotDetector"):
            assert name in repro.__all__, name
            assert hasattr(repro, name), name

    def test_top_level_all_is_sorted_and_resolvable(self):
        names = [n for n in repro.__all__ if n != "__version__"]
        assert names == sorted(names)
        for name in names:
            assert hasattr(repro, name), name

    def test_policy_by_name_resolves_madeus(self):
        assert repro.api.policy_by_name("Madeus") is MADEUS


class TestUnifiedKnobNames:
    """retry/backoff/resume spell the same on all three options."""

    def test_all_three_options_share_the_knob_names(self):
        from repro.api import (MigrationOptions, RebalanceOptions,
                               ScheduleOptions)
        for cls in (MigrationOptions, ScheduleOptions,
                    RebalanceOptions):
            fields = {f.name for f in dataclasses.fields(cls)}
            for knob in SHARED_KNOBS:
                assert knob in fields, (cls.__name__, knob)

    def test_no_new_options_class_grows_legacy_spellings(self):
        from repro.api import RebalanceOptions, ScheduleOptions
        for cls in (ScheduleOptions, RebalanceOptions):
            fields = {f.name for f in dataclasses.fields(cls)}
            assert not any(name.startswith("ship_retry")
                           for name in fields), cls.__name__

    def test_all_three_options_share_the_strategy_knob(self):
        from repro.api import (MigrationOptions, RebalanceOptions,
                               ScheduleOptions)
        for cls in (MigrationOptions, ScheduleOptions,
                    RebalanceOptions):
            fields = {f.name for f in dataclasses.fields(cls)}
            assert "strategy" in fields, cls.__name__

    def test_retired_ship_retry_spellings_raise_type_error(self):
        # The PR 8 shim served its one-release DeprecationWarning
        # window; the old names are now hard errors that point at the
        # unified spellings.
        for retired, current in (("ship_retry_limit", "retry_limit"),
                                 ("ship_retry_base", "retry_base"),
                                 ("ship_retry_cap", "retry_cap"),
                                 ("resumable", "resume")):
            with pytest.raises(TypeError, match=current):
                MigrationOptions(**{retired: 1})

    def test_retired_pipeline_bool_raises_naming_the_strategy(self):
        # The PR 9 one-release DeprecationWarning window is over: the
        # boolean spelling is now a hard error that names the exact
        # SnapshotStrategy member to use instead.
        with pytest.raises(TypeError, match="SnapshotStrategy.PIPELINED"):
            MigrationOptions(pipeline=True)
        with pytest.raises(TypeError, match="SnapshotStrategy.SERIAL"):
            MigrationOptions(pipeline=False)

    def test_retired_pipeline_bool_rejects_even_with_strategy(self):
        from repro.api import SnapshotStrategy
        with pytest.raises(TypeError, match="SnapshotStrategy"):
            MigrationOptions(
                strategy=SnapshotStrategy.WATERMARK, pipeline=True)

    def test_new_spellings_do_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            MigrationOptions(retry_limit=2, retry_base=0.5,
                             retry_cap=2.0, resume=True)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert not deprecations


class TestMigrationOptions:
    def test_defaults_are_all_inherit(self):
        options = MigrationOptions()
        assert options.rates is None
        assert options.pipeline is None
        assert options.standbys is None

    def test_resolve_fills_from_config(self):
        from repro.api import SnapshotStrategy
        config = MiddlewareConfig(policy=MADEUS, pipeline_snapshot=False,
                                  pipeline_depth=7)
        resolved = MigrationOptions().resolve(config)
        assert resolved.strategy is SnapshotStrategy.SERIAL
        assert resolved.pipeline_depth == 7
        assert isinstance(resolved.rates, TransferRates)
        assert resolved.standbys == ()
        piped = MigrationOptions().resolve(
            MiddlewareConfig(policy=MADEUS, pipeline_snapshot=True))
        assert piped.strategy is SnapshotStrategy.PIPELINED

    def test_resolve_keeps_explicit_overrides(self):
        from repro.api import SnapshotStrategy
        config = MiddlewareConfig(policy=MADEUS, pipeline_snapshot=False)
        resolved = MigrationOptions(
            strategy="pipelined", rates=RATES,
            standbys=["node2"]).resolve(config)
        assert resolved.strategy is SnapshotStrategy.PIPELINED
        assert resolved.rates is RATES
        assert resolved.standbys == ("node2",)

    def test_options_are_immutable(self):
        with pytest.raises(Exception):
            MigrationOptions().pipeline = True


class TestScheduleOptions:
    def test_defaults_resolve_to_fifo_unlimited(self):
        from repro.api import ScheduleOptions
        resolved = ScheduleOptions().resolve()
        assert resolved.policy == "fifo"
        assert resolved.max_concurrent == 0
        assert isinstance(resolved.migration, MigrationOptions)

    def test_unknown_policy_rejected(self):
        from repro.api import ScheduleOptions
        with pytest.raises(ValueError):
            ScheduleOptions(policy="magic").resolve()

    def test_negative_cap_rejected(self):
        from repro.api import ScheduleOptions
        with pytest.raises(ValueError):
            ScheduleOptions(max_concurrent=-1).resolve()

    def test_options_are_immutable(self):
        from repro.api import ScheduleOptions
        with pytest.raises(Exception):
            ScheduleOptions().policy = "fifo"


def _build():
    env = Environment()
    cluster = Cluster(env)
    cluster.add_node("node0")
    cluster.add_node("node1")
    middleware = Middleware(env, cluster, MiddlewareConfig(
        policy=MADEUS, verify_consistency=True))
    return env, cluster, middleware


def _drive_migration(env, cluster, middleware, migrate_call):
    holder = {}

    def main(env):
        yield from setup_kv_tenant(
            cluster.node("node0").instance, "A", 10)
        middleware.register_tenant("A", "node0")
        holder["report"] = yield from migrate_call()
    env.process(main(env))
    env.run()
    return holder["report"]


class TestShimRetired:
    """The one-release DeprecationWarning shim is gone (ROADMAP)."""

    def test_positional_rates_now_raises_type_error(self):
        env, cluster, middleware = _build()
        with pytest.raises(TypeError, match="MigrationOptions"):
            _drive_migration(
                env, cluster, middleware,
                lambda: middleware.migrate("A", "node1", RATES))

    def test_keyword_rates_and_standbys_now_raise(self):
        env, cluster, middleware = _build()
        cluster.add_node("node2")
        with pytest.raises(TypeError):
            _drive_migration(
                env, cluster, middleware,
                lambda: middleware.migrate("A", "node1", rates=RATES,
                                           standbys=["node2"]))

    def test_options_path_does_not_warn(self):
        env, cluster, middleware = _build()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = _drive_migration(
                env, cluster, middleware,
                lambda: middleware.migrate(
                    "A", "node1", MigrationOptions(rates=RATES)))
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert not deprecations
        assert report.consistent is True
