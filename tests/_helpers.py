"""Helpers shared by the test modules."""

from __future__ import annotations

from repro.sim import Environment


def drive(env: Environment, generator, until=None):
    """Run a process generator to completion and return its value."""
    process = env.process(generator)
    env.run(until=until)
    if not process.triggered:
        raise AssertionError("process did not finish by until=%r" % until)
    return process.value


def drive_all(env: Environment, *generators, until=None):
    """Run several process generators; returns their values in order."""
    processes = [env.process(g) for g in generators]
    env.run(until=until)
    return [p.value if p.triggered else None for p in processes]
