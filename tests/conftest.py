"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import pytest

# Make tests/_helpers.py importable from every test module regardless of
# the pytest import mode.
sys.path.insert(0, os.path.dirname(__file__))

from repro.sim import Environment  # noqa: E402


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()
