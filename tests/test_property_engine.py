"""Property-based tests (hypothesis) for the storage engine's
snapshot-isolation invariants."""

from hypothesis import given, settings, strategies as st

from repro.engine import DbmsInstance, Session
from repro.engine.mvcc import VersionChain
from repro.sim import Environment

# ---------------------------------------------------------------------------
# VersionChain visibility properties
# ---------------------------------------------------------------------------

versions = st.lists(
    st.tuples(st.integers(min_value=1, max_value=1000),
              st.one_of(st.none(), st.integers())),
    min_size=0, max_size=20,
    unique_by=lambda pair: pair[0])


@given(versions=versions, snapshot=st.integers(min_value=0,
                                               max_value=1100))
def test_chain_read_returns_newest_visible(versions, snapshot):
    """read(s) is the value of the largest CSN <= s, or None."""
    chain = VersionChain()
    ordered = sorted(versions)
    for csn, value in ordered:
        chain.install(csn, None if value is None else {"v": value})
    visible = [(csn, value) for csn, value in ordered if csn <= snapshot]
    row = chain.read(snapshot)
    if not visible:
        assert row is None
    else:
        _csn, value = visible[-1]
        assert row == (None if value is None else {"v": value})


@given(versions=versions,
       horizon=st.integers(min_value=0, max_value=1100),
       snapshot=st.integers(min_value=0, max_value=1100))
def test_prune_preserves_visibility_at_or_after_horizon(versions, horizon,
                                                        snapshot):
    """Pruning below the horizon never changes reads at >= horizon."""
    chain = VersionChain()
    pruned = VersionChain()
    for csn, value in sorted(versions):
        row = None if value is None else {"v": value}
        chain.install(csn, dict(row) if row else None)
        pruned.install(csn, dict(row) if row else None)
    pruned.prune(horizon)
    if snapshot >= horizon:
        assert chain.read(snapshot) == pruned.read(snapshot)


# ---------------------------------------------------------------------------
# engine-level SI invariants on randomised concurrent workloads
# ---------------------------------------------------------------------------

@st.composite
def workload(draw):
    """A set of concurrent read-modify-write clients."""
    clients = draw(st.integers(min_value=2, max_value=5))
    keys = draw(st.integers(min_value=1, max_value=4))
    plans = []
    for _c in range(clients):
        txns = draw(st.lists(
            st.tuples(st.integers(min_value=0, max_value=keys - 1),
                      st.floats(min_value=0.0, max_value=0.02),
                      st.booleans()),
            min_size=1, max_size=4))
        plans.append(txns)
    return keys, plans


@given(spec=workload())
@settings(max_examples=30, deadline=None)
def test_first_updater_wins_and_counter_integrity(spec):
    """Under arbitrary interleavings of increment transactions:

    * every key's final value equals the number of *successful* commits
      that incremented it (no lost updates, the classic SI guarantee),
    * at most one of any set of concurrent writers to a key commits.
    """
    keys, plans = spec
    env = Environment()
    instance = DbmsInstance(env, "n0")
    instance.create_tenant("T")

    def setup(env):
        s = Session(instance, "T")
        yield from s.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        yield from s.execute("BEGIN")
        for key in range(keys):
            yield from s.execute(
                "INSERT INTO kv (k, v) VALUES (%d, 0)" % key)
        yield from s.execute("COMMIT")
    proc = env.process(setup(env))
    env.run()
    assert proc.ok

    committed = {key: 0 for key in range(keys)}

    def client(env, plan):
        session = Session(instance, "T")
        for key, delay, do_abort in plan:
            yield env.timeout(delay)
            result = yield from session.execute("BEGIN")
            assert result.ok
            result = yield from session.execute(
                "SELECT v FROM kv WHERE k = %d" % key)
            if not result.ok:
                continue
            result = yield from session.execute(
                "UPDATE kv SET v = v + 1 WHERE k = %d" % key)
            if not result.ok:
                continue  # first-updater-wins abort
            if do_abort:
                yield from session.execute("ROLLBACK")
                continue
            result = yield from session.execute("COMMIT")
            if result.ok:
                committed[key] += 1
    for plan in plans:
        env.process(client(env, plan))
    env.run()

    table = instance.tenant("T").table("kv")
    for key in range(keys):
        row = table.chain(key).latest()
        assert row["v"] == committed[key], (
            "lost or phantom update on key %d" % key)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_snapshot_reads_are_stable(seed):
    """A reader repeating the same SELECT sees the same value no matter
    how many writers commit in between."""
    import random
    rng = random.Random(seed)
    env = Environment()
    instance = DbmsInstance(env, "n0")
    instance.create_tenant("T")

    def setup(env):
        s = Session(instance, "T")
        yield from s.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        yield from s.execute("BEGIN")
        yield from s.execute("INSERT INTO kv (k, v) VALUES (0, 0)")
        yield from s.execute("COMMIT")
    env.process(setup(env))
    env.run()

    observations = []

    def reader(env):
        session = Session(instance, "T")
        yield from session.execute("BEGIN")
        for _i in range(4):
            result = yield from session.execute(
                "SELECT v FROM kv WHERE k = 0")
            observations.append(result.rows[0]["v"])
            yield env.timeout(0.01)
        yield from session.execute("COMMIT")

    def writer(env):
        session = Session(instance, "T")
        for _i in range(3):
            yield env.timeout(rng.uniform(0.0, 0.03))
            yield from session.execute("BEGIN")
            yield from session.execute("SELECT v FROM kv WHERE k = 0")
            result = yield from session.execute(
                "UPDATE kv SET v = v + 1 WHERE k = 0")
            if result.ok:
                yield from session.execute("COMMIT")
    env.process(reader(env))
    env.process(writer(env))
    env.run()
    assert len(set(observations)) == 1
