"""Tests for seeded random streams and time-series monitors."""

import pytest

from repro.sim import CounterSeries, RandomStream, SampleSeries, \
    StreamFactory


class TestStreams:
    def test_same_seed_same_sequence(self):
        a = RandomStream(5)
        b = RandomStream(5)
        assert [a.random() for _i in range(10)] == \
            [b.random() for _i in range(10)]

    def test_factory_streams_are_independent(self):
        factory = StreamFactory(0)
        first = [factory.stream("a").random() for _i in range(5)]
        factory2 = StreamFactory(0)
        # drawing from "b" first must not change "a"'s sequence
        factory2.stream("b").random()
        second = [factory2.stream("a").random() for _i in range(5)]
        assert first == second

    def test_factory_same_name_returns_same_stream(self):
        factory = StreamFactory(1)
        assert factory.stream("x") is factory.stream("x")

    def test_different_root_seeds_differ(self):
        a = StreamFactory(1).stream("s").random()
        b = StreamFactory(2).stream("s").random()
        assert a != b

    def test_exponential_positive_and_mean(self):
        stream = RandomStream(3)
        draws = [stream.exponential(2.0) for _i in range(4000)]
        assert all(d >= 0 for d in draws)
        assert sum(draws) / len(draws) == pytest.approx(2.0, rel=0.1)

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            RandomStream(0).exponential(0)

    def test_randint_bounds(self):
        stream = RandomStream(4)
        draws = [stream.randint(1, 3) for _i in range(200)]
        assert set(draws) == {1, 2, 3}

    def test_weighted_choice_respects_weights(self):
        stream = RandomStream(5)
        draws = [stream.weighted_choice(("a", "b"), (0.99, 0.01))
                 for _i in range(500)]
        assert draws.count("a") > 400

    def test_uniform_bounds(self):
        stream = RandomStream(6)
        draws = [stream.uniform(2.0, 3.0) for _i in range(100)]
        assert all(2.0 <= d < 3.0 for d in draws)


class TestSampleSeries:
    def test_mean_over_window(self):
        series = SampleSeries()
        for t, v in ((1, 10.0), (2, 20.0), (3, 30.0)):
            series.record(t, v)
        assert series.mean(1, 3) == pytest.approx(15.0)  # [1, 3)
        assert series.mean() == pytest.approx(20.0)

    def test_mean_empty_window_is_zero(self):
        series = SampleSeries()
        series.record(1, 5.0)
        assert series.mean(10, 20) == 0.0

    def test_out_of_order_rejected(self):
        series = SampleSeries()
        series.record(5, 1.0)
        with pytest.raises(ValueError):
            series.record(4, 1.0)

    def test_percentile(self):
        series = SampleSeries()
        for t in range(101):
            series.record(t, float(t))
        assert series.percentile(50) == pytest.approx(50.0)
        assert series.percentile(95) == pytest.approx(95.0)

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            SampleSeries().percentile(101)

    def test_maximum(self):
        series = SampleSeries()
        for t, v in ((0, 1.0), (1, 9.0), (2, 3.0)):
            series.record(t, v)
        assert series.maximum() == 9.0
        assert series.maximum(2, 10) == 3.0

    def test_bucketed_mean_shape(self):
        series = SampleSeries()
        for t in range(10):
            series.record(t, float(t))
        buckets = series.bucketed_mean(5.0, 0.0, 10.0)
        assert len(buckets) == 2
        assert buckets[0] == (0.0, pytest.approx(2.0))
        assert buckets[1] == (5.0, pytest.approx(7.0))


class TestCounterSeries:
    def test_count_and_rate(self):
        series = CounterSeries()
        for t in (1, 2, 3, 4):
            series.record(t)
        assert series.count(1, 3) == 2  # [1, 3)
        assert series.rate(0, 4) == pytest.approx(0.75)

    def test_rate_degenerate_window(self):
        assert CounterSeries().rate(5, 5) == 0.0

    def test_bucketed_rate(self):
        series = CounterSeries()
        for t in (0.5, 1.5, 1.6, 1.7):
            series.record(t)
        buckets = series.bucketed_rate(1.0, 0.0, 2.0)
        assert buckets == [(0.0, 1.0), (1.0, 3.0)]

    def test_out_of_order_rejected(self):
        series = CounterSeries()
        series.record(3)
        with pytest.raises(ValueError):
            series.record(2)
