"""Edge cases of the middleware proxy: routing, registration,
autocommit statements, and the suspension gate."""

import pytest

from repro.cluster import Cluster
from repro.core import (MADEUS, Middleware, MiddlewareConfig,
                        MigrationOptions)
from repro.engine.dump import TransferRates
from repro.errors import RoutingError
from repro.sim import Environment
from repro.workload.simplekv import setup_kv_tenant

from _helpers import drive


@pytest.fixture
def rig(env):
    cluster = Cluster(env)
    cluster.add_node("node0")
    cluster.add_node("node1")
    middleware = Middleware(env, cluster,
                            MiddlewareConfig(policy=MADEUS))
    drive(env, setup_kv_tenant(cluster.node("node0").instance, "A", 10))
    middleware.register_tenant("A", "node0")
    return cluster, middleware


class TestRouting:
    def test_route_known_tenant(self, rig):
        _cluster, middleware = rig
        assert middleware.route("A") == "node0"

    def test_route_unknown_tenant_raises(self, rig):
        _cluster, middleware = rig
        with pytest.raises(RoutingError):
            middleware.route("ghost")

    def test_connect_unknown_tenant_raises(self, rig):
        _cluster, middleware = rig
        with pytest.raises(RoutingError):
            middleware.connect("ghost")

    def test_duplicate_registration_raises(self, rig):
        _cluster, middleware = rig
        with pytest.raises(RoutingError):
            middleware.register_tenant("A", "node1")

    def test_register_on_unknown_node_raises(self, env):
        cluster = Cluster(env)
        cluster.add_node("node0")
        middleware = Middleware(env, cluster, MiddlewareConfig())
        with pytest.raises(RoutingError):
            middleware.register_tenant("B", "ghost-node")


class TestAutocommitStatements:
    def test_autocommit_read_passes_through(self, env, rig):
        _cluster, middleware = rig
        conn = middleware.connect("A")

        def proc(env):
            result = yield from middleware.submit(
                conn, "SELECT v FROM kv WHERE k = 1")
            return result
        result = drive(env, proc(env))
        assert result.ok
        assert result.rows[0]["v"] == 0

    def test_autocommit_read_creates_no_ssb(self, env, rig):
        _cluster, middleware = rig
        conn = middleware.connect("A")

        def proc(env):
            yield from middleware.submit(
                conn, "SELECT v FROM kv WHERE k = 1")
        drive(env, proc(env))
        assert conn.ssb is None
        state = middleware.tenant_state("A")
        assert state.ssl.open_count() == 0


class TestSuspensionGate:
    def test_new_transactions_blocked_while_gate_closed(self, env, rig):
        _cluster, middleware = rig
        state = middleware.tenant_state("A")
        state.gate.close()
        conn = middleware.connect("A")
        started = []

        def client(env):
            yield from middleware.submit(conn, "BEGIN")
            started.append(env.now)
            yield from middleware.submit(
                conn, "SELECT v FROM kv WHERE k = 0")
            yield from middleware.submit(conn, "COMMIT")

        def opener(env):
            yield env.timeout(1.0)
            state.gate.open()
        env.process(client(env))
        env.process(opener(env))
        env.run()
        assert started and started[0] >= 1.0

    def test_statements_of_running_txn_pass_closed_gate(self, env, rig):
        """Suspension blocks transaction *starts*; in-flight
        transactions drain (otherwise Step 4 would deadlock)."""
        _cluster, middleware = rig
        state = middleware.tenant_state("A")
        conn = middleware.connect("A")
        finished = []

        def client(env):
            yield from middleware.submit(conn, "BEGIN")
            state.gate.close()
            yield from middleware.submit(
                conn, "SELECT v FROM kv WHERE k = 0")
            result = yield from middleware.submit(conn, "COMMIT")
            finished.append((env.now, result.ok))
            state.gate.open()
        env.process(client(env))
        env.run(until=5.0)
        assert finished and finished[0][1] is True


class TestConnectionStats:
    def test_statement_and_error_counters(self, env, rig):
        _cluster, middleware = rig
        conn = middleware.connect("A")

        def proc(env):
            yield from middleware.submit(conn, "BEGIN")
            yield from middleware.submit(
                conn, "SELECT v FROM kv WHERE k = 0")
            yield from middleware.submit(conn, "SELECT v FROM nowhere")
        drive(env, proc(env))
        assert conn.statements == 3
        assert conn.errors == 1

    def test_session_rebinds_after_switchover(self, env, rig):
        cluster, middleware = rig
        conn = middleware.connect("A")

        def proc(env):
            yield from middleware.submit(
                conn, "SELECT v FROM kv WHERE k = 0")
            first = conn.session().instance.name
            yield from middleware.migrate(
                "A", "node1", MigrationOptions(
                    rates=TransferRates(dump_mb_s=50.0,
                                        restore_mb_s=20.0)))
            yield from middleware.submit(
                conn, "SELECT v FROM kv WHERE k = 0")
            return first, conn.session().instance.name
        before, after = drive(env, proc(env))
        assert before == "node0"
        assert after == "node1"
