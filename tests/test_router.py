"""Unit coverage for the router tier and its substrate.

Four layers: the sample-retaining :class:`QuantileHistogram`, the
broadcast :class:`ChangeTap` cursor semantics (one feed, N consumers,
per-consumer discard), the shard behaviours (connection draining, stale
route detection, crash/restart), and the ``router_crash`` fault kind
(plan validation, injection, seeded :class:`FailureModel` stream).
"""

from __future__ import annotations

import pytest

from repro.core import MigrationOptions, SnapshotStrategy
from repro.core.pipeline import ChangeTap
from repro.faults import (
    ROUTER_CRASH,
    FailureModel,
    FaultInjector,
    FaultPlan,
    generate_plan,
)
from repro.obs.metrics import MetricsRegistry, QuantileHistogram
from repro.router import RouterConfig, RouterFleet
from repro.workload.simplekv import (
    KvWorkloadConfig,
    run_kv_clients,
    setup_kv_tenant,
)

from _helpers import drive
from test_fault_tolerance import RATES, build


# ---------------------------------------------------------------------
# QuantileHistogram
# ---------------------------------------------------------------------

class TestQuantileHistogram:
    def test_quantiles_and_summary(self):
        histogram = QuantileHistogram("t")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.min == 1.0 and histogram.max == 100.0
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(0.5) == 51.0
        assert histogram.quantile(0.99) == 100.0
        assert histogram.quantile(1.0) == 100.0

    def test_empty_and_reset(self):
        histogram = QuantileHistogram("t")
        assert histogram.quantile(0.5) == 0.0
        histogram.observe(3.0)
        histogram.reset()
        assert histogram.count == 0
        assert histogram.samples == []

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            QuantileHistogram("t").quantile(1.5)

    def test_to_dict_carries_percentiles(self):
        histogram = QuantileHistogram("t")
        histogram.observe(1.0)
        histogram.observe(9.0)
        record = histogram.to_dict()
        assert record["kind"] == "quantile_histogram"
        assert record["count"] == 2
        assert record["p50"] == 9.0
        assert record["p99"] == 9.0

    def test_registry_keeps_kinds_apart(self):
        registry = MetricsRegistry()
        histogram = registry.quantile_histogram("router.downtime")
        assert registry.quantile_histogram("router.downtime") is histogram
        registry.histogram("plain")
        with pytest.raises(TypeError):
            registry.quantile_histogram("plain")
        # snapshot() treats it as a histogram (mean), like its parent.
        histogram.observe(2.0)
        histogram.observe(4.0)
        assert registry.snapshot()["router.downtime"] == 3.0


# ---------------------------------------------------------------------
# Broadcast ChangeTap
# ---------------------------------------------------------------------

WRITE = (("kv", 1, {"k": 1, "v": 1}),)


class TestTapBroadcast:
    def test_consumers_read_the_same_records(self, env):
        tap = ChangeTap(env, name="A")
        first = tap.consumer("dest")
        second = tap.consumer("standby:node2")
        tap.append_txn(WRITE)
        tap.append_txn(WRITE)
        batch, marker = first.peek(10)
        assert len(batch) == 2 and marker is None
        first.advance(2)
        batch, _ = second.peek(10)
        assert len(batch) == 2
        assert first.drained and not second.drained
        assert tap.pending_count() == 2  # slowest active consumer

    def test_reattach_by_name_resumes_the_cursor(self, env):
        tap = ChangeTap(env, name="A")
        cursor = tap.consumer("dest")
        tap.append_txn(WRITE)
        cursor.advance(1)
        assert tap.consumer("dest") is cursor

    def test_marker_waits_for_every_active_consumer(self, env):
        tap = ChangeTap(env, name="A")
        first = tap.consumer("dest")
        second = tap.consumer("standby:node2")
        tap.append_txn(WRITE)
        marker = tap.marker("hi", 0)
        assert not marker.reached.triggered
        first.advance(1)
        _batch, seen = first.peek(10)
        first.reach_marker(seen)
        assert not marker.reached.triggered  # still waiting on second
        second.advance(1)
        second.reach_marker(marker)
        assert marker.reached.triggered

    def test_discarding_a_consumer_releases_markers(self, env):
        tap = ChangeTap(env, name="A")
        first = tap.consumer("dest")
        second = tap.consumer("standby:node2")
        tap.append_txn(WRITE)
        marker = tap.marker("hi", 0)
        first.advance(1)
        first.reach_marker(marker)
        assert not marker.reached.triggered
        tap.discard_consumer("standby:node2")
        assert marker.reached.triggered
        assert not second.active
        # Discarded consumers no longer hold the backlog watermark.
        assert tap.pending_count() == 0
        # Unknown / repeated discards are tolerated no-ops.
        tap.discard_consumer("standby:node2")
        tap.discard_consumer("never-attached")

    def test_marker_with_no_consumers_fires_immediately(self, env):
        tap = ChangeTap(env, name="A")
        marker = tap.marker("lo", 0)
        assert marker.reached.triggered


# ---------------------------------------------------------------------
# Router shard / fleet behaviour
# ---------------------------------------------------------------------

def _routed(env, *, nodes=2, shards=2, seed=5, **config_kwargs):
    cluster, middleware = build(env, nodes=nodes)
    fleet = RouterFleet(env, middleware, shards=shards, seed=seed,
                        config=RouterConfig(**config_kwargs))
    return cluster, middleware, fleet


def _register_kv_tenant(env, cluster, middleware, keys=12):
    drive(env, setup_kv_tenant(cluster.node("node0").instance, "A",
                               keys))
    middleware.register_tenant("A", "node0")


def _run_load(env, fleet, *, clients=3, txns=40, seed=3, keys=12):
    config = KvWorkloadConfig(keys=keys, clients=clients,
                              transactions_per_client=txns,
                              think_time=0.05)
    return run_kv_clients(env, fleet, "A", config, seed=seed)


def _migrate(env, middleware, **extra):
    holder = {}

    def main(env):
        holder["report"] = yield from middleware.migrate(
            "A", "node1", MigrationOptions(rates=RATES, **extra))
    env.process(main(env))
    return holder


class TestRouterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RouterConfig(park_capacity=0).validate()
        with pytest.raises(ValueError):
            RouterConfig(park_timeout=0).validate()
        with pytest.raises(ValueError):
            RouterConfig(retry_base=0.5, retry_cap=0.1).validate()

    def test_fleet_needs_a_shard(self, env):
        _cluster, middleware = build(env, nodes=2)
        with pytest.raises(ValueError):
            RouterFleet(env, middleware, shards=0)


class TestConnectionDraining:
    def test_handover_parks_begins_and_records_downtime(self, env):
        cluster, middleware, fleet = _routed(env)
        _register_kv_tenant(env, cluster, middleware)
        workload = _run_load(env, fleet)
        holder = _migrate(env, middleware)
        env.run()
        assert holder["report"].outcome == "ok"
        assert workload.committed_txns > 0
        downtime = middleware.metrics.get("router.downtime")
        assert downtime is not None and downtime.count >= 1
        assert downtime.quantile(0.99) >= downtime.quantile(0.5) >= 0
        # The bounded queue fully drains once the gate reopens.
        assert middleware.metrics.gauge("router.parked").value == 0
        for shard in fleet.shards:
            assert shard.parked == 0

    def test_park_queue_is_bounded(self, env):
        # Close the gate by hand and land two BEGINs on a capacity-1
        # shard: the first parks, the second is rejected outright.
        cluster, middleware, fleet = _routed(env, shards=1,
                                             park_capacity=1,
                                             park_timeout=60.0)
        _register_kv_tenant(env, cluster, middleware)
        middleware.tenant_state("A").gate.close()
        results = []

        def client(env):
            conn = fleet.connect("A")
            result = yield from fleet.submit(conn, "BEGIN")
            results.append(result)
        env.process(client(env))
        env.process(client(env))
        env.run(until=1.0)
        rejects = middleware.metrics.get("router.park_rejects")
        assert rejects is not None and rejects.value == 1
        assert any(not r.ok and "park queue full" in r.error
                   for r in results)
        # Reopen the gate: the parked BEGIN is admitted normally.
        middleware.tenant_state("A").gate.open()
        env.run()
        assert any(r.ok for r in results)

    def test_parked_begin_times_out(self, env):
        # Close the gate by hand and never reopen it: the parked BEGIN
        # must come back as an error after park_timeout, not hang.
        cluster, middleware, fleet = _routed(env, shards=1,
                                             park_timeout=2.0)
        _register_kv_tenant(env, cluster, middleware)
        middleware.tenant_state("A").gate.close()
        conn = fleet.connect("A")
        result = drive(env, fleet.submit(conn, "BEGIN"))
        assert not result.ok
        assert "timed out" in result.error
        assert env.now >= 2.0
        timeouts = middleware.metrics.get("router.park_timeouts")
        assert timeouts is not None and timeouts.value == 1


class TestStaleRouting:
    def test_stale_cache_is_detected_and_retried(self, env):
        cluster, middleware, fleet = _routed(env, shards=1)
        _register_kv_tenant(env, cluster, middleware)
        conn = fleet.connect("A")
        result = drive(env, fleet.submit(conn, "BEGIN"))
        assert result.ok
        drive(env, fleet.submit(conn, "COMMIT"))
        holder = _migrate(env, middleware)
        env.run()
        assert holder["report"].outcome == "ok"
        # No invalidation push: the shard's cache still says node0.
        result = drive(env, fleet.submit(conn, "BEGIN"))
        assert result.ok
        drive(env, fleet.submit(conn, "COMMIT"))
        stale = middleware.metrics.get("router.stale_routes")
        assert stale is not None and stale.value >= 1
        events = [e for e in middleware.tracer.events
                  if e.name == "router.stale_route"]
        assert events and events[0].attrs["owner"] == "node1"

    def test_invalidate_clears_the_cache(self, env):
        cluster, middleware, fleet = _routed(env, shards=1)
        _register_kv_tenant(env, cluster, middleware)
        conn = fleet.connect("A")
        drive(env, fleet.submit(conn, "BEGIN"))
        drive(env, fleet.submit(conn, "COMMIT"))
        holder = _migrate(env, middleware)
        env.run()
        assert holder["report"].outcome == "ok"
        fleet.invalidate("A")
        drive(env, fleet.submit(conn, "BEGIN"))
        drive(env, fleet.submit(conn, "COMMIT"))
        assert middleware.metrics.get("router.stale_routes") is None


class TestCrashRecovery:
    def test_no_survivor_then_restart(self, env):
        cluster, middleware, fleet = _routed(env, shards=1)
        _register_kv_tenant(env, cluster, middleware)
        conn = fleet.connect("A")
        fleet.shard("router0").crash()
        result = drive(env, fleet.submit(conn, "BEGIN"))
        assert not result.ok and "no live router shard" in result.error
        fleet.shard("router0").restart()
        result = drive(env, fleet.submit(conn, "BEGIN"))
        assert result.ok
        result = drive(env, fleet.submit(conn, "COMMIT"))
        assert result.ok

    def test_crash_unwinds_server_side_transaction(self, env):
        cluster, middleware, fleet = _routed(env, shards=2)
        _register_kv_tenant(env, cluster, middleware)
        conn = fleet.connect("A")
        result = drive(env, fleet.submit(conn, "BEGIN"))
        assert result.ok
        state = middleware.tenant_state("A")
        assert state.active_txns == 1
        conn.shard.crash()
        result = drive(env, fleet.submit(conn, "SELECT v FROM kv "
                                               "WHERE k = 1"))
        assert not result.ok and "unknown" in result.error
        # The reconnect disconnected the abandoned middleware half, so
        # the open transaction rolled back instead of wedging drains.
        assert state.active_txns == 0
        assert conn.shard.name == "router1"
        result = drive(env, fleet.submit(conn, "BEGIN"))
        assert result.ok

    def test_crash_and_restart_are_idempotent(self, env):
        _cluster, middleware, fleet = _routed(env, shards=1)
        shard = fleet.shard("router0")
        shard.crash()
        shard.crash()
        shard.restart()
        shard.restart()
        assert middleware.metrics.counter("router.crashes").value == 1
        assert middleware.metrics.counter("router.restarts").value == 1


# ---------------------------------------------------------------------
# router_crash fault kind
# ---------------------------------------------------------------------

class TestRouterFaults:
    def test_spec_requires_a_target(self):
        plan = FaultPlan()
        with pytest.raises(ValueError, match="router shard"):
            plan.add("r0", ROUTER_CRASH, at=1.0)

    def test_injector_rejects_unknown_shards(self, env):
        cluster, middleware = build(env, nodes=2)
        plan = FaultPlan()
        plan.add("r0", ROUTER_CRASH, at=1.0, target="router9")
        with pytest.raises(ValueError, match="router9"):
            FaultInjector(env, cluster, plan)

    def test_injection_crashes_and_restarts_the_shard(self, env):
        cluster, middleware, fleet = _routed(env, shards=2)
        plan = FaultPlan()
        plan.add("r0", ROUTER_CRASH, at=1.0, target="router0",
                 duration=2.0)
        injector = FaultInjector(env, cluster, plan,
                                 tracer=middleware.tracer,
                                 metrics=middleware.metrics,
                                 routers=fleet.shard_map())
        injector.start()
        env.run(until=1.5)
        assert fleet.shard("router0").crashed
        env.run(until=4.0)
        assert not fleet.shard("router0").crashed
        assert len(injector.recovered) == 1
        kinds = middleware.metrics.counter(
            "faults.injected.router_crash")
        assert kinds.value == 1

    def test_failure_model_router_stream_is_seeded(self):
        model = FailureModel(node_mtbf=0.0, router_mtbf=300.0,
                             router_mttr=5.0)
        first = generate_plan(model, ["node0"], 3600.0, seed=42,
                              routers=["router0", "router1"])
        second = generate_plan(model, ["node0"], 3600.0, seed=42,
                              routers=["router0", "router1"])
        assert first.to_dicts() == second.to_dicts()
        assert len(first) >= 2
        assert {spec.kind for spec in first} == {ROUTER_CRASH}
        assert {spec.target for spec in first} <= {"router0", "router1"}
        shifted = generate_plan(model, ["node0"], 3600.0, seed=43,
                                routers=["router0", "router1"])
        assert shifted.to_dicts() != first.to_dicts()

    def test_router_stream_never_perturbs_node_draws(self):
        base = FailureModel(node_mtbf=600.0, node_mttr=30.0)
        with_routers = FailureModel(node_mtbf=600.0, node_mttr=30.0,
                                    router_mtbf=300.0)
        nodes = ["node0", "node1"]
        plain = generate_plan(base, nodes, 3600.0, seed=7)
        mixed = generate_plan(with_routers, nodes, 3600.0, seed=7,
                              routers=["router0"])
        node_specs = [spec for spec in mixed
                      if spec.kind != ROUTER_CRASH]
        assert [spec.to_dict() for spec in node_specs] == \
            plain.to_dicts()
        # routers omitted => the stream is silently disabled.
        assert generate_plan(with_routers, nodes, 3600.0,
                             seed=7).to_dicts() == plain.to_dicts()


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
