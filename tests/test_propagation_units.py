"""Unit tests for the propagation engines against hand-built SSLs.

These drive the Conductor and SerialReplayer directly (no middleware,
no workload) so round structure, commit batching, and drain semantics
can be asserted precisely.
"""

import pytest

from repro.cluster import Cluster
from repro.core import (B_CON, B_MIN, MADEUS, LsirValidator, Operation,
                        OpKind, SyncsetBuffer, SyncsetList)
from repro.core.propagation import Conductor, SerialReplayer, \
    make_propagator
from repro.engine import DbmsInstance, Session, parse
from repro.net.network import Network
from repro.sim import Environment

from _helpers import drive


def _slave(env, keys=10):
    instance = DbmsInstance(env, "slave")
    instance.create_tenant("T")

    def setup(env):
        s = Session(instance, "T")
        yield from s.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        yield from s.execute("BEGIN")
        for key in range(keys):
            yield from s.execute(
                "INSERT INTO kv (k, v) VALUES (%d, 0)" % key)
        yield from s.execute("COMMIT")
    drive(env, setup(env))
    return instance


def _ssb(sts, ets, key, value):
    ssb = SyncsetBuffer(sts=sts)
    read_sql = "SELECT v FROM kv WHERE k = %d" % key
    ssb.save(Operation(OpKind.FIRST_READ, read_sql, parse(read_sql)))
    write_sql = "UPDATE kv SET v = %d WHERE k = %d" % (value, key)
    ssb.save(Operation(OpKind.WRITE, write_sql, parse(write_sql)))
    ssb.ets = ets
    ssb.save(Operation(OpKind.COMMIT, "COMMIT", parse("COMMIT")))
    return ssb


def _build(env, policy, validator=None):
    slave = _slave(env)
    ssl = SyncsetList()
    network = Network(env)
    propagator = make_propagator(env, ssl, slave, "T", network, policy,
                                 validator)
    return slave, ssl, propagator


class TestFactory:
    def test_concurrent_policies_get_conductor(self, env):
        _s, _ssl, prop = _build(env, MADEUS)
        assert isinstance(prop, Conductor)

    def test_serial_policies_get_replayer(self, env):
        _s, _ssl, prop = _build(env, B_MIN)
        assert isinstance(prop, SerialReplayer)


class TestConductorRounds:
    def test_replays_linked_ssbs_and_drains(self, env):
        validator = LsirValidator()
        slave, ssl, prop = _build(env, MADEUS, validator)
        # two concurrent txns at snapshot 0, one later at snapshot 2
        for ssb in (_ssb(0, 0, 1, 11), _ssb(0, 1, 2, 22),
                    _ssb(2, 2, 3, 33)):
            ssl.link(ssb, env.now)
        prop.start()
        prop.notify_linked()
        prop.request_stop()
        drained = prop.wait_fully_drained()

        def waiter(env):
            yield drained
        drive(env, waiter(env))
        assert prop.stats.syncsets_replayed == 3
        assert validator.is_valid
        table = slave.tenant("T").table("kv")
        assert table.chain(1).latest()["v"] == 11
        assert table.chain(3).latest()["v"] == 33

    def test_concurrent_commits_share_flush(self, env):
        slave, ssl, prop = _build(env, MADEUS)
        # four txns sharing STS=0 with consecutive ETS: one commit batch
        for index in range(4):
            ssl.link(_ssb(0, index, index, index + 1), env.now)
        flushes_before = slave.wal.flush_count
        prop.start()
        prop.notify_linked()
        prop.request_stop()
        drained = prop.wait_fully_drained()

        def waiter(env):
            yield drained
        drive(env, waiter(env))
        flushes = slave.wal.flush_count - flushes_before
        assert prop.stats.commits_replayed == 4
        assert flushes < 4  # grouped

    def test_serial_commits_flush_individually(self, env):
        slave, ssl, prop = _build(env, B_CON)
        for index in range(4):
            ssl.link(_ssb(0, index, index, index + 1), env.now)
        flushes_before = slave.wal.flush_count
        prop.start()
        prop.notify_linked()
        prop.request_stop()
        drained = prop.wait_fully_drained()

        def waiter(env):
            yield drained
        drive(env, waiter(env))
        assert slave.wal.flush_count - flushes_before == 4

    def test_conductor_waits_for_open_transaction(self, env):
        """An open SSB at the smallest STS blocks the round until the
        transaction resolves — the invariant behind rule 1-b."""
        validator = LsirValidator()
        _slave_inst, ssl, prop = _build(env, MADEUS, validator)
        open_ssb = _ssb(0, None, 5, 55)
        open_ssb.ets = None
        open_ssb.entries.pop()  # drop the commit entry: still running
        ssl.register_open(open_ssb)
        ssl.link(_ssb(0, 0, 1, 11), env.now)
        prop.start()
        prop.notify_linked()

        def resolver(env):
            yield env.timeout(0.5)
            # transaction commits now: link it
            open_ssb.ets = 1
            open_ssb.save(Operation(OpKind.COMMIT, "COMMIT",
                                    parse("COMMIT")))
            ssl.resolve_open(open_ssb)
            ssl.link(open_ssb, env.now)
            prop.notify_linked()
            prop.notify_open_changed()
            prop.request_stop()
            yield prop.wait_fully_drained()
        drive(env, resolver(env))
        assert prop.stats.syncsets_replayed == 2
        assert validator.is_valid
        # nothing replayed before the open transaction resolved
        first_times = [e.time for e in validator.events
                       if e.kind == "first_read"]
        assert min(first_times) >= 0.5

    def test_rounds_counted(self, env):
        _s, ssl, prop = _build(env, MADEUS)
        ssl.link(_ssb(0, 0, 1, 1), env.now)
        ssl.link(_ssb(1, 1, 2, 2), env.now)
        prop.start()
        prop.notify_linked()
        prop.request_stop()
        drained = prop.wait_fully_drained()

        def waiter(env):
            yield drained
        drive(env, waiter(env))
        assert prop.stats.rounds == 2


class TestSerialReplayer:
    def test_replays_in_link_order(self, env):
        validator = LsirValidator()
        slave, ssl, prop = _build(env, B_MIN, validator)
        ssl.link(_ssb(0, 1, 1, 10), 0.0)
        ssl.link(_ssb(0, 0, 2, 20), 0.1)  # later link, smaller ETS
        prop.start()
        prop.notify_linked()
        prop.request_stop()
        drained = prop.wait_fully_drained()

        def waiter(env):
            yield drained
        drive(env, waiter(env))
        commits = [e for e in validator.events if e.kind == "commit"]
        assert [c.ets for c in commits] == [1, 0]  # link order

    def test_single_player_only(self, env):
        _s, ssl, prop = _build(env, B_MIN)
        for index in range(5):
            ssl.link(_ssb(0, index, index, index), env.now)
        prop.start()
        prop.notify_linked()
        prop.request_stop()
        drained = prop.wait_fully_drained()

        def waiter(env):
            yield drained
        drive(env, waiter(env))
        assert prop.stats.max_concurrent_players == 1

    def test_caught_up_fires_when_queue_empties(self, env):
        _s, ssl, prop = _build(env, B_MIN)
        ssl.link(_ssb(0, 0, 1, 1), env.now)
        prop.start()
        prop.notify_linked()
        caught = prop.wait_caught_up()

        def waiter(env):
            yield caught
            return env.now
        finished_at = drive(env, waiter(env), until=5.0)
        assert finished_at < 5.0
        prop.request_stop()
        env.run()


class TestReplayFailure:
    def test_bad_syncset_fails_loudly(self, env):
        """A replay statement that errors (protocol bug) must crash the
        propagation, not silently diverge."""
        from repro.errors import MigrationError
        _s, ssl, prop = _build(env, B_MIN)
        ssb = SyncsetBuffer(sts=0)
        bad_sql = "SELECT v FROM no_such_table"
        ssb.save(Operation(OpKind.FIRST_READ, bad_sql, parse(bad_sql)))
        ssb.ets = 0
        ssb.save(Operation(OpKind.COMMIT, "COMMIT", parse("COMMIT")))
        ssl.link(ssb, env.now)
        prop.start()
        prop.notify_linked()
        with pytest.raises(MigrationError):
            env.run()
