"""Tests for the TPC-W workload: schema, population, mixes,
interaction templates, and the emulated browsers."""

import pytest

from repro.cluster import Cluster
from repro.core import Middleware, MiddlewareConfig
from repro.engine import DbmsInstance
from repro.engine.sqlmini import parse, is_read_statement, \
    is_write_statement, Insert, Update, Delete
from repro.sim import Environment, RandomStream, StreamFactory
from repro.workload.tpcw import (INTERACTIONS, EbConfig, EbState,
                                 IdAllocator, PAPER_TABLE3,
                                 PopulationParams, TpcwContext,
                                 UPDATE_INTERACTIONS, all_schemas,
                                 mix_weights, nominal_database_size_mb,
                                 populate, start_tenant_load,
                                 update_fraction)

from _helpers import drive


class TestSchemas:
    def test_ten_tables(self):
        assert len(all_schemas()) == 10

    def test_expected_tables_present(self):
        names = set(all_schemas())
        assert {"customer", "address", "country", "item", "author",
                "orders", "order_line", "cc_xacts", "shopping_cart",
                "shopping_cart_line"} == names

    def test_each_table_has_primary_key(self):
        for schema in all_schemas().values():
            assert schema.primary_key

    def test_item_is_widest_table(self):
        schemas = all_schemas()
        item_width = schemas["item"].row_width_bytes()
        assert all(item_width >= s.row_width_bytes()
                   for s in schemas.values())


class TestPopulationModel:
    def test_cardinalities_follow_spec(self):
        params = PopulationParams(items=1000, ebs=10)
        cards = params.cardinalities()
        assert cards["customer"] == 28800
        assert cards["address"] == 2 * cards["customer"]
        assert cards["orders"] == int(0.9 * cards["customer"])
        assert cards["order_line"] == 3 * cards["orders"]
        assert cards["author"] == 250
        assert cards["country"] == 92

    @pytest.mark.parametrize("entry", PAPER_TABLE3,
                             ids=lambda e: "%(items)d-items" % e)
    def test_table3_sizes_within_ten_percent(self, entry):
        """Table 3 reproduction: the size model matches the paper."""
        params = PopulationParams(items=entry["items"], ebs=entry["ebs"])
        model_gb = nominal_database_size_mb(params) / 1000.0
        assert model_gb == pytest.approx(entry["size_gb"], rel=0.10)

    def test_scaled_cardinalities_respect_row_scale(self):
        params = PopulationParams(items=1000, ebs=10, row_scale=0.1)
        scaled = params.scaled_cardinalities()
        assert scaled["customer"] == 2880
        assert scaled["item"] == 100

    def test_populate_loads_rows_and_size(self, env):
        instance = DbmsInstance(env, "n0")
        params = PopulationParams(items=1000, ebs=10, row_scale=0.05)
        populate(instance, "T", params, RandomStream(1))
        tenant = instance.tenant("T")
        assert tenant.row_count() > 1000
        # scaled rows x multiplier + overhead lands near nominal
        nominal = nominal_database_size_mb(params)
        assert tenant.size_mb() == pytest.approx(nominal, rel=0.15)

    def test_populate_builds_indexes(self, env):
        instance = DbmsInstance(env, "n0")
        params = PopulationParams(items=1000, ebs=10, row_scale=0.05)
        populate(instance, "T", params, RandomStream(1))
        item = instance.tenant("T").table("item")
        assert item.indexes["idx_item_subject"].entry_count() == \
            item.live_row_count()


class TestMixes:
    @pytest.mark.parametrize("mix,expected", [
        ("ordering", 0.50), ("shopping", 0.20), ("browsing", 0.05)])
    def test_update_fractions_match_paper(self, mix, expected):
        assert update_fraction(mix) == pytest.approx(expected, abs=0.02)

    def test_mix_weights_cover_all_interactions(self):
        names, weights = mix_weights("ordering")
        assert set(names) == set(INTERACTIONS)
        assert all(w > 0 for w in weights)

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError):
            mix_weights("nope")

    def test_update_interactions_subset(self):
        assert UPDATE_INTERACTIONS <= set(INTERACTIONS)


@pytest.fixture
def ctx():
    return TpcwContext(customers=100, items=200, orders=90)


class TestInteractionTemplates:
    def _steps(self, name, ctx, state=None, seed=0):
        state = state or EbState(customer_id=1)
        return INTERACTIONS[name](ctx, state, RandomStream(seed), 1.0)

    @pytest.mark.parametrize("name", sorted(INTERACTIONS))
    def test_all_statements_parse(self, name, ctx):
        for sql, cpu in self._steps(name, ctx):
            parse(sql)  # must not raise
            assert cpu > 0

    @pytest.mark.parametrize("name", sorted(UPDATE_INTERACTIONS))
    def test_no_blind_writes(self, name, ctx):
        """Paper Section 3.1: the first operation of every update
        transaction is a read."""
        steps = self._steps(name, ctx)
        first = parse(steps[0][0])
        assert is_read_statement(first)

    @pytest.mark.parametrize("name", sorted(UPDATE_INTERACTIONS))
    def test_update_templates_do_write(self, name, ctx):
        steps = self._steps(name, ctx)
        assert any(is_write_statement(parse(sql)) for sql, _c in steps)

    @pytest.mark.parametrize(
        "name", sorted(set(INTERACTIONS) - UPDATE_INTERACTIONS))
    def test_readonly_templates_never_write(self, name, ctx):
        steps = self._steps(name, ctx)
        assert all(is_read_statement(parse(sql)) for sql, _c in steps)

    @pytest.mark.parametrize("name", sorted(UPDATE_INTERACTIONS))
    def test_writes_are_primary_key_addressed(self, name, ctx):
        """LSIR replay correctness relies on PK-addressed writes."""
        schemas = all_schemas()
        for seed in range(5):
            for sql, _cpu in self._steps(name, ctx, seed=seed):
                statement = parse(sql)
                if isinstance(statement, (Update, Delete)):
                    pk = schemas[statement.table].primary_key
                    assert any(c.column == pk and c.op == "="
                               for c in statement.where), sql
                elif isinstance(statement, Insert):
                    pk = schemas[statement.table].primary_key
                    assert pk in statement.columns, sql

    def test_buy_confirm_decrements_stock(self, ctx):
        state = EbState(customer_id=1)
        state.cart_items = [(5, 2)]
        steps = self._steps("buy_confirm", ctx, state=state)
        stock_updates = [sql for sql, _c in steps
                         if "i_stock" in sql and sql.startswith("UPDATE")]
        assert len(stock_updates) == 1
        assert "WHERE i_id = 5" in stock_updates[0]

    def test_buy_confirm_empties_cart(self, ctx):
        state = EbState(customer_id=1)
        state.cart_items = [(5, 2), (6, 1)]
        self._steps("buy_confirm", ctx, state=state)
        assert state.cart_items == []

    def test_shopping_cart_creates_then_reuses_cart(self, ctx):
        state = EbState(customer_id=1)
        first = self._steps("shopping_cart", ctx, state=state)
        assert any("INSERT INTO shopping_cart " in sql
                   for sql, _c in first)
        cart_id = state.cart_id
        second = self._steps("shopping_cart", ctx, state=state)
        assert state.cart_id == cart_id
        assert any("UPDATE shopping_cart " in sql for sql, _c in second)

    def test_id_allocator_unique_across_tables(self):
        ids = IdAllocator()
        a = [ids.next_id("orders") for _i in range(3)]
        b = [ids.next_id("customer") for _i in range(3)]
        assert len(set(a)) == 3
        assert len(set(b)) == 3

    def test_templates_deterministic_under_seed(self, ctx):
        first = self._steps("home", ctx, seed=7)
        second = self._steps("home", ctx, seed=7)
        assert first == second


class TestEmulatedBrowsers:
    def _run_load(self, env, ebs=20, until=10.0, mix="ordering"):
        cluster = Cluster(env)
        node = cluster.add_node("n0")
        middleware = Middleware(env, cluster, MiddlewareConfig())
        params = PopulationParams(items=500, ebs=5, row_scale=0.02)
        populate(node.instance, "A", params, RandomStream(11))
        middleware.register_tenant("A", "n0")
        scaled = params.scaled_cardinalities()
        context = TpcwContext(customers=scaled["customer"],
                              items=scaled["item"],
                              orders=scaled["orders"])
        config = EbConfig(ebs=ebs, mix=mix, think_time=0.5,
                          cpu_scale=1.0)
        metrics = start_tenant_load(env, middleware, "A", context,
                                    config, seed=5)
        env.run(until=until)
        return metrics

    def test_load_produces_interactions(self, env):
        metrics = self._run_load(env)
        assert metrics.interactions > 100

    def test_response_times_recorded(self, env):
        metrics = self._run_load(env)
        assert len(metrics.response_times) > 0
        assert metrics.mean_response_time() > 0

    def test_update_fraction_near_mix(self, env):
        metrics = self._run_load(env)
        fraction = metrics.update_interactions / metrics.interactions
        assert fraction == pytest.approx(0.5, abs=0.1)

    def test_browsing_mix_mostly_reads(self, env):
        metrics = self._run_load(env, mix="browsing")
        fraction = metrics.update_interactions / metrics.interactions
        assert fraction < 0.15

    def test_throughput_tracks_closed_loop(self, env):
        metrics = self._run_load(env, ebs=20, until=10.0)
        # 20 EBs / ~0.5s think -> at most ~40/s; must be positive and
        # bounded by the closed-loop ceiling
        tput = metrics.throughput(2.0, 10.0)
        assert 5.0 < tput <= 45.0

    def test_deterministic_under_seed(self):
        env_a = Environment()
        metrics_a = None
        env_b = Environment()

        def run(env):
            return self._run_load(env, ebs=5, until=5.0)
        metrics_a = run(env_a)
        metrics_b = run(env_b)
        assert metrics_a.interactions == metrics_b.interactions
        assert metrics_a.response_times.values == \
            metrics_b.response_times.values
