"""The failure-model chaos soak (``repro chaos --soak``).

One short seeded soak is shared by the whole module (it runs a full
multi-tenant fleet for half a simulated hour); the tests then assert
the structural invariants, the artifact schema, byte-determinism
across same-seed runs, and the ``check_trace.py`` soak gate.
"""

import argparse
import importlib.util
import json
import os

import pytest

from repro.cli import main as cli_main
from repro.experiments import soak

SEED = 7
HOURS = 0.5


def _load_check_trace():
    path = os.path.join(os.path.dirname(__file__), os.pardir,
                        "scripts", "check_trace.py")
    spec = importlib.util.spec_from_file_location("check_trace", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _gate_args(**overrides):
    base = dict(policy=None, min_rounds=None, min_players=None,
                require_phase_order=False, expect_outcome=None,
                min_fault_events=None, expect_standby_dropped=None,
                expect_owner_count=None, min_overlapping_faults=None,
                expect_resumed=None, max_lost_commits=None)
    base.update(overrides)
    return argparse.Namespace(**base)


@pytest.fixture(scope="module")
def soak_run(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("soak"))
    report = soak.run_soak(seed=SEED, hours=HOURS,
                           trace_dir=directory, soak_dir=directory)
    return report


class TestInvariants:
    def test_soak_holds_every_structural_invariant(self, soak_run):
        outcome = soak_run.data
        assert outcome.ok
        assert outcome.lost_commits == 0
        assert outcome.value_mismatches == 0
        assert outcome.owner_violations == []
        assert outcome.unmigrated_tenants == []
        assert outcome.wedged_waves == 0

    def test_faults_actually_landed_and_recovered(self, soak_run):
        outcome = soak_run.data
        assert outcome.injected_faults >= 5
        assert outcome.recovered_faults == outcome.injected_faults
        assert outcome.unrecovered_faults == 0

    def test_at_least_one_migration_finished_via_resume(self, soak_run):
        outcome = soak_run.data
        assert outcome.migrations_ok >= len(outcome.tenants)
        assert outcome.resumed_ok >= 1
        assert outcome.resumes >= outcome.resumed_ok

    def test_workload_committed_through_the_chaos(self, soak_run):
        outcome = soak_run.data
        assert outcome.committed_txns > 100


class TestArtifacts:
    def test_report_matches_schema(self, soak_run):
        with open(soak_run.data.report_path) as handle:
            record = json.load(handle)
        assert record["experiment"] == "chaos-soak"
        assert record["seed"] == SEED
        assert record["ok"] is True
        for section in ("faults", "migrations", "workload",
                        "invariants", "waves", "model"):
            assert section in record
        assert record["invariants"]["lost_commits"] == 0
        assert record["migrations"]["resumed_ok"] \
            == soak_run.data.resumed_ok
        assert record["faults"]["injected"] \
            == soak_run.data.injected_faults
        for wave in record["waves"]:
            assert {"wave", "started", "ended", "jobs"} \
                <= set(wave.keys())

    def test_trace_has_wave_and_summary_events(self, soak_run):
        names = set()
        with open(soak_run.data.trace_path) as handle:
            for line in handle:
                record = json.loads(line)
                if record.get("type") == "event":
                    names.add(record["name"])
        assert "soak.wave" in names
        assert "soak.summary" in names
        assert "fault.injected" in names

    def test_same_seed_reruns_are_byte_identical(self, soak_run,
                                                 tmp_path):
        directory = str(tmp_path)
        rerun = soak.run_soak(seed=SEED, hours=HOURS,
                              trace_dir=directory, soak_dir=directory)
        with open(soak_run.data.report_path, "rb") as handle:
            first = handle.read()
        with open(rerun.data.report_path, "rb") as handle:
            second = handle.read()
        assert first == second
        with open(soak_run.data.trace_path, "rb") as handle:
            first_trace = handle.read()
        with open(rerun.data.trace_path, "rb") as handle:
            second_trace = handle.read()
        assert first_trace == second_trace


class TestTraceGate:
    def test_check_trace_soak_gate_passes(self, soak_run):
        check_trace = _load_check_trace()
        _policy, failures, _skipped = check_trace.check_file(
            soak_run.data.trace_path,
            _gate_args(expect_resumed=1, max_lost_commits=0,
                       expect_owner_count=1, min_fault_events=1))
        assert failures == []

    def test_check_trace_flags_missing_resumes(self, soak_run):
        check_trace = _load_check_trace()
        _policy, failures, _skipped = check_trace.check_file(
            soak_run.data.trace_path,
            _gate_args(expect_resumed=9999))
        assert failures
        assert any("resume" in failure for failure in failures)

    def test_check_trace_flags_lost_commit_budget(self, soak_run):
        check_trace = _load_check_trace()
        _policy, failures, _skipped = check_trace.check_file(
            soak_run.data.trace_path,
            _gate_args(max_lost_commits=-1))
        assert failures


class TestCli:
    def test_chaos_soak_cli_smoke(self, tmp_path, capsys):
        directory = str(tmp_path)
        code = cli_main(["chaos", "--soak", "--hours", "0.1",
                         "--seed", "3", "--tenants", "2",
                         "--nodes", "3",
                         "--trace-dir", directory,
                         "--soak-dir", directory])
        out = capsys.readouterr().out
        assert code == 0
        assert "Chaos soak" in out
        assert os.path.exists(
            os.path.join(directory, "trace_chaos_soak.jsonl"))
        assert os.path.exists(
            os.path.join(directory, "SOAK_seed3.json"))
