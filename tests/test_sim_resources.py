"""Tests for Resource and Store."""

import pytest

from repro.sim import Environment, Resource, Store

from _helpers import drive, drive_all


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grant_immediate_when_free(self, env):
        res = Resource(env, capacity=1)

        def proc(env):
            req = res.request()
            yield req
            granted_at = env.now
            res.release(req)
            return granted_at
        assert drive(env, proc(env)) == 0.0

    def test_fifo_queueing(self, env):
        res = Resource(env, capacity=1)
        order = []

        def worker(env, tag):
            req = res.request()
            yield req
            order.append((tag, env.now))
            yield env.timeout(2)
            res.release(req)
        for tag in ("a", "b", "c"):
            env.process(worker(env, tag))
        env.run()
        assert order == [("a", 0), ("b", 2), ("c", 4)]

    def test_capacity_two_runs_in_pairs(self, env):
        res = Resource(env, capacity=2)
        done = []

        def worker(env, tag):
            req = res.request()
            yield req
            yield env.timeout(1)
            res.release(req)
            done.append((tag, env.now))
        for tag in range(4):
            env.process(worker(env, tag))
        env.run()
        assert [t for _tag, t in done] == [1, 1, 2, 2]

    def test_queue_length(self, env):
        res = Resource(env, capacity=1)

        def holder(env):
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)

        def observer(env):
            yield env.timeout(1)
            return res.queue_length
        env.process(holder(env))
        env.process(holder(env))
        env.process(holder(env))
        observed = drive(env, observer(env))
        assert observed == 2

    def test_utilisation_full(self, env):
        res = Resource(env, capacity=1)

        def worker(env):
            req = res.request()
            yield req
            yield env.timeout(10)
            res.release(req)
        env.process(worker(env))
        env.run()
        assert res.utilisation() == pytest.approx(1.0)

    def test_utilisation_half(self, env):
        res = Resource(env, capacity=2)

        def worker(env):
            req = res.request()
            yield req
            yield env.timeout(10)
            res.release(req)
        env.process(worker(env))
        env.run()
        assert res.utilisation() == pytest.approx(0.5)

    def test_mean_wait(self, env):
        res = Resource(env, capacity=1)

        def worker(env):
            req = res.request()
            yield req
            yield env.timeout(4)
            res.release(req)
        env.process(worker(env))
        env.process(worker(env))
        env.run()
        # first waited 0, second waited 4
        assert res.mean_wait() == pytest.approx(2.0)

    def test_release_queued_request_cancels(self, env):
        res = Resource(env, capacity=1)

        def holder(env):
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)

        def canceller(env):
            yield env.timeout(1)
            req = res.request()  # queued behind holder
            res.release(req)     # withdraw before grant
            return res.queue_length
        env.process(holder(env))
        assert drive(env, canceller(env)) == 0

    def test_release_ungranted_unqueued_raises(self, env):
        res = Resource(env, capacity=1)

        def proc(env):
            req = res.request()
            yield req
            res.release(req)
            with pytest.raises(RuntimeError):
                res.release(req)
        drive(env, proc(env))


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("item")

        def proc(env):
            value = yield store.get()
            return value
        assert drive(env, proc(env)) == "item"

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def getter(env):
            value = yield store.get()
            return (env.now, value)

        def putter(env):
            yield env.timeout(3)
            store.put("late")
        results = drive_all(env, getter(env), putter(env))
        assert results[0] == (3, "late")

    def test_fifo_item_order(self, env):
        store = Store(env)
        for index in range(3):
            store.put(index)

        def proc(env):
            items = []
            for _count in range(3):
                items.append((yield store.get()))
            return items
        assert drive(env, proc(env)) == [0, 1, 2]

    def test_fifo_getter_order(self, env):
        store = Store(env)
        results = []

        def getter(env, tag):
            value = yield store.get()
            results.append((tag, value))

        def putter(env):
            yield env.timeout(1)
            store.put("x")
            store.put("y")
        env.process(getter(env, "first"))
        env.process(getter(env, "second"))
        env.process(putter(env))
        env.run()
        assert results == [("first", "x"), ("second", "y")]

    def test_len_counts_buffered(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2
