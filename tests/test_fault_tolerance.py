"""Fault-tolerant migration orchestration: crashes, outages, and
divergence handled inside ``Middleware.migrate`` (Section 4.2).

These tests exercise the *automatic* recovery paths -- the manual
``fail_standby`` hook is covered in test_multislave.py -- plus the
chaos experiment harness end to end, gated by scripts/check_trace.py
exactly as CI does it.
"""

import argparse
import importlib.util
import os

import pytest

from repro.cluster import Cluster
from repro.core import (B_CON, MADEUS, Middleware, MiddlewareConfig,
                        MigrationOptions, states_equal)
from repro.engine.dump import TransferRates
from repro.errors import CatchUpTimeout, MigrationError, SourceCrashed
from repro.faults import FaultInjector, FaultPlan
from repro.workload.simplekv import (KvWorkloadConfig, run_kv_clients,
                                     setup_kv_tenant)

RATES = TransferRates(dump_mb_s=5.0, restore_mb_s=2.0)


def build(env, nodes=3, policy=MADEUS, deadline=None, **config_kwargs):
    cluster = Cluster(env)
    for index in range(nodes):
        cluster.add_node("node%d" % index)
    middleware = Middleware(env, cluster, MiddlewareConfig(
        policy=policy, validate_lsir=False, verify_consistency=True,
        catchup_deadline=deadline, **config_kwargs))
    return cluster, middleware


def seed_tenant(env, cluster, middleware, *, keys=30, overhead_mb=1.0,
                clients=5, txns=60, think_time=0.01, read_ratio=0.4,
                seed=21):
    """Populate tenant A on node0 and start kv load; returns workload."""
    holder = {}

    def setup(env):
        yield from setup_kv_tenant(cluster.node("node0").instance, "A",
                                   keys)
        cluster.node("node0").instance.tenant(
            "A").fixed_overhead_mb = overhead_mb
        middleware.register_tenant("A", "node0")
        config = KvWorkloadConfig(keys=keys, clients=clients,
                                  transactions_per_client=txns,
                                  read_only_ratio=read_ratio,
                                  think_time=think_time)
        holder["workload"] = run_kv_clients(env, middleware, "A", config,
                                            seed=seed)
    env.process(setup(env))
    while "workload" not in holder:
        env.run(until=env.now + 0.05)
    env.run(until=env.now + 0.05)   # let the load ramp up
    return holder["workload"]


def crash_when_catching_up(env, middleware, instance, extra_delay=0.0):
    """Crash ``instance`` once Step 3 is under way for tenant A."""
    def crasher(env):
        state = middleware.tenant_state("A")
        while state.propagator is None:
            yield env.timeout(0.02)
        if extra_delay:
            yield env.timeout(extra_delay)
        instance.crash()
    env.process(crasher(env))


def crash_when_phase_opens(env, middleware, instance, phase,
                           after_phases=()):
    """Crash ``instance`` once ``phase`` opens (and ``after_phases``
    have closed, to pin the crash inside overlapping pipeline steps)."""
    from repro.obs.trace import PHASE

    def span_for(name):
        for span in middleware.tracer.spans:
            if span.kind == PHASE and span.name == name:
                return span
        return None

    def crasher(env):
        while True:
            target = span_for(phase)
            if target is not None and target.end is None and all(
                    span_for(name) is not None
                    and span_for(name).end is not None
                    for name in after_phases):
                break
            yield env.timeout(0.01)
        instance.crash()
    env.process(crasher(env))


class TestSourceCrash:
    """Section 4.2: "if the master fails, Madeus aborts the migration".

    A source crash in any phase must abort with the source keeping
    ownership, and nothing that committed remotely may be lost — the
    WAL-replayed source still holds every acknowledged increment.
    """

    def _run(self, env, cluster, middleware, standbys=(), **options):
        holder = {}

        def main(env):
            try:
                holder["report"] = yield from middleware.migrate(
                    "A", "node1",
                    MigrationOptions(rates=RATES,
                                     standbys=tuple(standbys),
                                     **options))
            except SourceCrashed as exc:
                holder["error"] = exc
        env.process(main(env))
        env.run()
        return holder

    def _assert_aborted_to_source(self, middleware, holder, phase):
        error = holder["error"]
        assert error.node == "node0"
        assert error.phase == phase
        assert "committed state is preserved" in str(error)
        assert middleware.route("A") == "node0"
        assert middleware.owners("A") == ["node0"]
        state = middleware.tenant_state("A")
        assert state.gate.is_open
        assert not state.migrating
        assert state.propagator is None
        report = middleware.reports[0]
        assert report.outcome == "aborted"
        assert report.source_crashed is True
        assert report.owner == "node0"
        assert report.ended_at is not None
        assert middleware.metrics.counter(
            "migration.source_crashed").value == 1
        events = [e for e in middleware.tracer.events
                  if e.name == "migration.source_crashed"]
        assert len(events) == 1
        assert events[0].attrs["phase"] == phase

    def _assert_commits_survive_restart(self, env, cluster, workload):
        source = cluster.node("node0").instance
        restarted = {}

        def restart(env):
            yield from source.restart()
            restarted["done"] = True
        env.process(restart(env))
        env.run()
        assert restarted.get("done")
        table = source.tenant("A").table("kv")
        for key, increments in workload.committed_increments.items():
            assert table.chain(key).latest()["v"] == increments, \
                "key %d lost committed increments" % key

    def test_crash_during_dump_aborts(self, env):
        cluster, middleware = build(env)
        workload = seed_tenant(env, cluster, middleware, overhead_mb=2.0)
        crash_when_phase_opens(env, middleware,
                               cluster.node("node0").instance, "dump")
        # small chunks so the dump is still streaming when the crash
        # lands (a 2 MB tenant is a single default-size chunk)
        holder = self._run(env, cluster, middleware, chunk_mb=0.25)
        self._assert_aborted_to_source(middleware, holder, "dump")
        self._assert_commits_survive_restart(env, cluster, workload)

    def test_crash_during_restore_aborts(self, env):
        cluster, middleware = build(env)
        workload = seed_tenant(env, cluster, middleware, overhead_mb=2.0)
        crash_when_phase_opens(env, middleware,
                               cluster.node("node0").instance,
                               "restore", after_phases=("dump",))
        holder = self._run(env, cluster, middleware)
        self._assert_aborted_to_source(middleware, holder, "restore")
        self._assert_commits_survive_restart(env, cluster, workload)

    def test_crash_during_catchup_aborts(self, env):
        cluster, middleware = build(env)
        workload = seed_tenant(env, cluster, middleware)
        crash_when_catching_up(env, middleware,
                               cluster.node("node0").instance)
        holder = self._run(env, cluster, middleware, standbys=["node2"])
        self._assert_aborted_to_source(middleware, holder, "catch-up")
        # standby scaffolding wound down with the abort
        state = middleware.tenant_state("A")
        assert state.standby_propagators == {}
        assert state.standby_ssls == {}
        self._assert_commits_survive_restart(env, cluster, workload)

    def test_source_stays_writable_after_restart(self, env):
        cluster, middleware = build(env)
        seed_tenant(env, cluster, middleware)
        crash_when_catching_up(env, middleware,
                               cluster.node("node0").instance)
        holder = {}

        def main(env):
            try:
                yield from middleware.migrate(
                    "A", "node1", MigrationOptions(rates=RATES))
            except SourceCrashed as exc:
                holder["error"] = exc
            yield env.timeout(1.0)
            yield from cluster.node("node0").instance.restart()
            conn = middleware.connect("A")
            yield from middleware.submit(conn, "BEGIN")
            result = yield from middleware.submit(
                conn, "UPDATE kv SET v = v + 1 WHERE k = 0")
            holder["update_ok"] = result.ok
            result = yield from middleware.submit(conn, "COMMIT")
            holder["commit_ok"] = result.ok
        env.process(main(env))
        env.run()
        assert "error" in holder
        assert holder["update_ok"] and holder["commit_ok"]
        assert middleware.route("A") == "node0"


class TestStandbyCrash:
    def test_crashed_standby_is_auto_discarded(self, env):
        cluster, middleware = build(env)
        seed_tenant(env, cluster, middleware)
        crash_when_catching_up(env, middleware,
                               cluster.node("node2").instance)
        holder = {}

        def main(env):
            holder["report"] = yield from middleware.migrate(
                "A", "node1",
                MigrationOptions(rates=RATES, standbys=["node2"]))
        env.process(main(env))
        env.run()
        report = holder["report"]
        assert report.outcome == "ok"
        assert report.consistent is True
        assert report.failed_standbys == ["node2"]
        assert report.failovers == 0
        assert middleware.route("A") == "node1"
        assert middleware.metrics.counter(
            "migration.standby_dropped").value == 1
        events = [e for e in middleware.tracer.events
                  if e.name == "migration.standby_dropped"]
        assert len(events) == 1
        assert events[0].attrs["phase"] == "catch-up"

    def test_standby_crash_during_restore_is_discarded(self, env):
        cluster, middleware = build(env)
        seed_tenant(env, cluster, middleware, overhead_mb=2.0)
        holder = {}

        def crasher(env):
            # mid-restore: after the dump (0.4 s) but before the ~1 s
            # restore completes on the standby
            yield env.timeout(0.8)
            cluster.node("node2").instance.crash()
        env.process(crasher(env))

        def main(env):
            holder["report"] = yield from middleware.migrate(
                "A", "node1",
                MigrationOptions(rates=RATES, standbys=["node2"]))
        env.process(main(env))
        env.run()
        report = holder["report"]
        assert report.outcome == "ok"
        assert report.consistent is True
        assert report.failed_standbys == ["node2"]
        assert middleware.route("A") == "node1"


class TestDestinationCrash:
    def test_failover_promotes_surviving_standby(self, env):
        cluster, middleware = build(env)
        workload = seed_tenant(env, cluster, middleware)
        crash_when_catching_up(env, middleware,
                               cluster.node("node1").instance)
        holder = {}

        def main(env):
            holder["report"] = yield from middleware.migrate(
                "A", "node1",
                MigrationOptions(rates=RATES, standbys=["node2"]))
        env.process(main(env))
        env.run()
        report = holder["report"]
        assert report.outcome == "ok"
        assert report.failovers == 1
        assert report.destination == "node2"
        assert report.consistent is True
        assert middleware.route("A") == "node2"
        assert middleware.metrics.counter(
            "migration.failover").value == 1
        # every committed increment made it to the promoted standby
        promoted = cluster.node("node2").instance.tenant("A")
        for key, increments in workload.committed_increments.items():
            assert promoted.table("kv").chain(key).latest()["v"] == \
                increments

    def test_no_standby_aborts_and_source_stays_live(self, env):
        cluster, middleware = build(env)
        seed_tenant(env, cluster, middleware)
        crash_when_catching_up(env, middleware,
                               cluster.node("node1").instance)
        holder = {}

        def main(env):
            try:
                yield from middleware.migrate(
                    "A", "node1", MigrationOptions(rates=RATES))
            except MigrationError as exc:
                holder["error"] = exc
            # the tenant must still be fully usable on the source
            conn = middleware.connect("A")
            yield from middleware.submit(conn, "BEGIN")
            result = yield from middleware.submit(
                conn, "UPDATE kv SET v = v + 1 WHERE k = 0")
            holder["update_ok"] = result.ok
            result = yield from middleware.submit(conn, "COMMIT")
            holder["commit_ok"] = result.ok
        env.process(main(env))
        env.run()
        assert "destination node1 failed" in str(holder["error"])
        assert middleware.route("A") == "node0"
        state = middleware.tenant_state("A")
        assert state.gate.is_open
        assert not state.migrating
        assert holder["update_ok"] and holder["commit_ok"]
        # the aborted attempt is reported too (outcome + end stamped)
        assert len(middleware.reports) == 1
        report = middleware.reports[0]
        assert report.outcome == "aborted"
        assert report.ended_at is not None

    def test_retry_after_destination_crash_succeeds(self, env):
        cluster, middleware = build(env)
        seed_tenant(env, cluster, middleware)
        dest = cluster.node("node1").instance
        crash_when_catching_up(env, middleware, dest)
        holder = {}

        def main(env):
            try:
                yield from middleware.migrate(
                    "A", "node1", MigrationOptions(rates=RATES))
            except MigrationError as exc:
                holder["error"] = exc
            # wind down, repair the node, retry the same move
            yield env.timeout(2.0)
            yield from dest.restart()
            if dest.has_tenant("A"):
                dest.drop_tenant("A")
            holder["report"] = yield from middleware.migrate(
                "A", "node1", MigrationOptions(rates=RATES))
        env.process(main(env))
        env.run()
        assert "error" in holder
        assert holder["report"].consistent is True
        assert middleware.route("A") == "node1"


class TestShipRetries:
    def test_transient_outage_during_ship_is_retried(self, env):
        cluster, middleware = build(env, nodes=2)
        seed_tenant(env, cluster, middleware, overhead_mb=10.0,
                    think_time=0.05)
        # Outage covers the dump (2 s at 5 MB/s) and the first ship
        # attempts; the capped backoff keeps retrying until the link
        # heals at t~2.5 s.
        cluster.network.fail_link()

        def healer(env):
            yield env.timeout(2.5)
            cluster.network.restore_link()
        env.process(healer(env))
        holder = {}

        def main(env):
            holder["report"] = yield from middleware.migrate(
                "A", "node1", MigrationOptions(rates=RATES))
        env.process(main(env))
        env.run()
        report = holder["report"]
        assert report.outcome == "ok"
        assert report.consistent is True
        assert report.ship_retries >= 1
        assert middleware.metrics.counter(
            "migration.retries").value == report.ship_retries
        assert any(e.name == "migration.retry"
                   for e in middleware.tracer.events)

    def test_outage_longer_than_retry_budget_aborts(self, env):
        cluster, middleware = build(
            env, nodes=2, ship_retry_limit=2, ship_retry_base=0.01,
            ship_retry_cap=0.02)
        seed_tenant(env, cluster, middleware, overhead_mb=10.0,
                    think_time=0.05)
        cluster.network.fail_link()   # never restored
        holder = {}

        def main(env):
            try:
                yield from middleware.migrate(
                    "A", "node1", MigrationOptions(rates=RATES))
            except MigrationError as exc:
                holder["error"] = exc
        env.process(main(env))
        env.run(until=30.0)
        assert "no standby survives" in str(holder["error"])
        assert middleware.route("A") == "node0"
        assert middleware.tenant_state("A").gate.is_open
        assert middleware.reports[0].outcome == "aborted"


class TestDivergenceWatchdog:
    def test_diverging_backlog_aborts_before_deadline(self, env):
        # B-CON replays serially; a heavy update-only workload commits
        # faster than the replayer drains, so the backlog grows without
        # bound and the watchdog should fire long before the deadline.
        cluster, middleware = build(
            env, nodes=2, policy=B_CON, deadline=60.0,
            divergence_interval=0.05, divergence_window=4,
            divergence_min_growth=8)
        seed_tenant(env, cluster, middleware, clients=8, txns=4000,
                    think_time=0.002, read_ratio=0.0)
        holder = {}

        def main(env):
            try:
                yield from middleware.migrate(
                    "A", "node1", MigrationOptions(rates=RATES))
            except CatchUpTimeout as exc:
                holder["timeout"] = exc
                holder["at"] = env.now
        env.process(main(env))
        env.run(until=40.0)
        timeout = holder["timeout"]
        assert timeout.reason == "diverging"
        assert "diverging" in str(timeout)
        assert holder["at"] < 30.0   # way ahead of the 60 s deadline
        assert any(e.name == "migration.diverging"
                   for e in middleware.tracer.events)
        report = middleware.reports[0]
        assert report.outcome == "aborted"
        assert report.ended_at is not None


class TestAbortCleanup:
    def test_abort_clears_standby_propagators(self, env):
        """A timed-out migration must stop and clear the standby
        engines, not just the primary (regression test)."""
        cluster, middleware = build(env, deadline=0.001)
        seed_tenant(env, cluster, middleware, clients=8, txns=400,
                    think_time=0.005, read_ratio=0.0)
        holder = {}

        def main(env):
            try:
                yield from middleware.migrate(
                "A", "node1",
                MigrationOptions(rates=RATES, standbys=["node2"]))
            except CatchUpTimeout as exc:
                holder["timeout"] = exc
        env.process(main(env))
        env.run(until=20.0)
        assert "timeout" in holder
        state = middleware.tenant_state("A")
        assert state.propagator is None
        assert state.standby_propagators == {}
        assert state.standby_ssls == {}
        report = middleware.reports[0]
        assert report.outcome == "aborted"
        assert "node2" in report.failed_standbys

    def test_timeout_report_is_stamped_and_recorded(self, env):
        """Satellite: the CatchUpTimeout path must stamp ended_at and
        append the report (it used to drop it on the floor)."""
        cluster, middleware = build(env, deadline=0.001)
        seed_tenant(env, cluster, middleware)
        holder = {}

        def main(env):
            try:
                yield from middleware.migrate(
                    "A", "node1", MigrationOptions(rates=RATES))
            except CatchUpTimeout as exc:
                holder["timeout"] = exc
        env.process(main(env))
        env.run(until=20.0)
        assert len(middleware.reports) == 1
        report = middleware.reports[0]
        assert report.outcome == "aborted"
        assert report.ended_at is not None
        assert report.ended_at >= report.started_at
        assert middleware.metrics.counter("migration.aborted").value == 1
        # and the tenant is still live on the source with the gate open
        assert middleware.route("A") == "node0"
        assert middleware.tenant_state("A").gate.is_open


class TestInjectorDrivenMigration:
    def test_phase_anchored_crash_via_injector(self, env):
        """The full loop: a declarative plan armed against the
        middleware's own tracer drops the standby automatically."""
        cluster, middleware = build(env)
        seed_tenant(env, cluster, middleware)
        plan = FaultPlan()
        plan.add("standby-dies", "crash", target="node2",
                 phase="catch-up")
        injector = FaultInjector(env, cluster, plan,
                                 tracer=middleware.tracer,
                                 metrics=middleware.metrics)
        injector.start()
        holder = {}

        def main(env):
            holder["report"] = yield from middleware.migrate(
                "A", "node1",
                MigrationOptions(rates=RATES, standbys=["node2"]))
        env.process(main(env))
        env.run()
        report = holder["report"]
        assert report.outcome == "ok"
        assert report.consistent is True
        assert report.failed_standbys == ["node2"]
        assert middleware.metrics.counter("faults.injected").value == 1
        # source and destination agree despite the chaos
        equal, diffs = states_equal(
            cluster.node("node0").instance.tenant("A"),
            cluster.node("node1").instance.tenant("A"))
        assert equal, diffs


def _load_check_trace():
    path = os.path.join(os.path.dirname(__file__), os.pardir,
                        "scripts", "check_trace.py")
    spec = importlib.util.spec_from_file_location("check_trace", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _gate_args(**overrides):
    base = dict(policy=None, min_rounds=None, min_players=None,
                require_phase_order=False, expect_outcome=None,
                min_fault_events=None, expect_standby_dropped=None,
                expect_owner_count=None, min_overlapping_faults=None,
                expect_resumed=None, max_lost_commits=None)
    base.update(overrides)
    return argparse.Namespace(**base)


class TestChaosExperiment:
    @pytest.fixture()
    def trace_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        return tmp_path

    def test_standby_crash_scenario_passes_the_ci_gate(self, trace_dir):
        from repro.experiments import chaos
        from repro.experiments.profiles import SMOKE
        outcome = chaos.run_chaos("standby-crash", SMOKE)
        assert outcome.outcome == "ok"
        assert outcome.standby_dropped == 1
        assert outcome.consistent is True
        assert outcome.trace_path is not None
        check_trace = _load_check_trace()
        _policy, failures, _skipped = check_trace.check_file(
            outcome.trace_path,
            _gate_args(expect_outcome="ok", min_fault_events=1,
                       expect_standby_dropped=1,
                       require_phase_order=True))
        assert failures == []

    def test_destination_crash_scenario_fails_over(self, trace_dir):
        from repro.experiments import chaos
        from repro.experiments.profiles import SMOKE
        outcome = chaos.run_chaos("destination-crash", SMOKE)
        assert outcome.outcome == "failover"
        assert outcome.route == "node2"
        assert outcome.consistent is True
        check_trace = _load_check_trace()
        _policy, failures, _skipped = check_trace.check_file(
            outcome.trace_path,
            _gate_args(expect_outcome="failover", min_fault_events=1))
        assert failures == []
        # the same trace must NOT pass as a plain 'ok'
        _policy, failures, _skipped = check_trace.check_file(
            outcome.trace_path, _gate_args(expect_outcome="ok"))
        assert failures

    def test_unknown_scenario_rejected(self):
        from repro.experiments import chaos
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            chaos.run_chaos("meteor-strike")
