"""Seeded runs must be bit-for-bit reproducible.

The kernel merges three internally-sorted queues (tick deque, lane
deque, overflow heap) by a globally unique sequence key, so the merge
reproduces the single-heap total order exactly.  These tests pin that
property end to end: a fixed seed yields an identical exported trace,
an identical migration report, and byte-identical paper-figure text.
"""

import dataclasses
import json

from repro.experiments import get_profile
from repro.experiments import migration_time, preliminary
from repro.experiments.common import TenantSetup, build_testbed

SMOKE = get_profile("smoke")


def _migrate_once(trace_dir):
    """One seeded smoke migration; returns (report, trace records)."""
    testbed = build_testbed(SMOKE, [TenantSetup("A", "node0",
                                                paper_ebs=20)],
                            trace_dir=str(trace_dir))
    outcome = testbed.migrate_async("A", "node1")
    testbed.run_until(lambda: outcome.get("done", False))
    assert "report" in outcome, "seeded smoke migration must finish"
    with open(outcome["trace_path"]) as handle:
        records = handle.read()
    return outcome["report"], records


class TestSeededMigrationDeterminism:
    def test_trace_and_report_identical_across_runs(self, tmp_path):
        report_a, trace_a = _migrate_once(tmp_path / "a")
        report_b, trace_b = _migrate_once(tmp_path / "b")
        # Every field of the report — timings, counters, consistency —
        # must match exactly, not approximately.
        assert dataclasses.asdict(report_a) == dataclasses.asdict(report_b)
        assert trace_a == trace_b

    def test_trace_timestamps_are_simulated(self, tmp_path):
        """The trace clock is sim time, so bytes can't drift with load."""
        _report, trace = _migrate_once(tmp_path / "t")
        meta = json.loads(trace.splitlines()[0])
        assert meta["type"] == "meta"
        assert meta["clock"] == "sim"
        assert meta["seed"] == SMOKE.seed


class TestPaperFigureByteStability:
    def test_fig5_report_text_identical_across_runs(self):
        first = preliminary.run(SMOKE)
        second = preliminary.run(SMOKE)
        assert first.text == second.text
        assert first.data == second.data

    def test_fig6_report_text_identical_across_runs(self):
        first = migration_time.run(SMOKE)
        second = migration_time.run(SMOKE)
        assert first.text == second.text
        assert first.data == second.data

    def test_seed_changes_the_run(self):
        """Sanity check: determinism comes from the seed, not from the
        numbers being insensitive to it."""
        report_a, _ = _run_seeded(7)
        report_b, _ = _run_seeded(8)
        assert report_a.ended_at != report_b.ended_at


def _run_seeded(seed):
    from repro.experiments.common import seeded
    profile = seeded(SMOKE, seed)
    testbed = build_testbed(profile, [TenantSetup("A", "node0",
                                                  paper_ebs=20)])
    outcome = testbed.migrate_async("A", "node1")
    testbed.run_until(lambda: outcome.get("done", False))
    return outcome["report"], testbed
