"""Tests for the shared-link bandwidth model and the multi-tenant
migration scheduler.

Timing assertions are *relative* only (stream A vs stream B, concurrent
vs serialized) per the ROADMAP tolerance policy — never absolute
seconds."""

import pytest

from repro.cluster import Cluster
from repro.core import (
    MADEUS,
    Middleware,
    MiddlewareConfig,
    MigrationOptions,
    MigrationScheduler,
    ScheduleOptions,
)
from repro.engine import TransferRates
from repro.errors import MigrationError
from repro.net import Network, NetworkSpec
from repro.sim import Environment, Interrupt
from repro.workload.simplekv import setup_kv_tenant

from _helpers import drive

RATES = TransferRates(dump_mb_s=8.0, restore_mb_s=4.0, base_mb=64.0,
                      chunk_mb=8.0)


@pytest.fixture
def env():
    return Environment()


def _transfer(env, net, done, name, src, dst, mb, delay=0.0):
    def player(env):
        if delay:
            yield env.timeout(delay)
        try:
            yield from net.bulk_transfer(src, dst, mb)
        except Interrupt:
            return
        done[name] = env.now
    return env.process(player(env), name=name)


class TestLinkContention:
    def test_two_streams_on_one_link_take_twice_as_long(self, env):
        net = Network(env, NetworkSpec(latency=0.0,
                                       bandwidth_mb_s=100.0))
        done = {}
        _transfer(env, net, done, "solo", "n0", "n1", 100)
        env.run()
        solo = done["solo"]
        env2 = Environment()
        net2 = Network(env2, NetworkSpec(latency=0.0,
                                        bandwidth_mb_s=100.0))
        done2 = {}
        _transfer(env2, net2, done2, "a", "n0", "n1", 100)
        _transfer(env2, net2, done2, "b", "n0", "n1", 100)
        env2.run()
        # equal halves of the link: both finish together at ~2x solo
        assert done2["a"] == pytest.approx(done2["b"])
        assert done2["a"] == pytest.approx(2.0 * solo, rel=0.01)

    def test_disjoint_links_do_not_contend(self, env):
        net = Network(env, NetworkSpec(latency=0.0,
                                       bandwidth_mb_s=100.0))
        done = {}
        _transfer(env, net, done, "a", "n0", "n1", 100)
        _transfer(env, net, done, "b", "n2", "n3", 100)
        env.run()
        assert done["a"] == pytest.approx(done["b"])
        solo_env = Environment()
        solo_net = Network(solo_env, NetworkSpec(latency=0.0,
                                                 bandwidth_mb_s=100.0))
        solo_done = {}
        _transfer(solo_env, solo_net, solo_done, "solo",
                  "n0", "n1", 100)
        solo_env.run()
        assert done["a"] == pytest.approx(solo_done["solo"])

    def test_late_joiner_slows_then_leaves_and_speeds_up(self, env):
        net = Network(env, NetworkSpec(latency=0.0,
                                       bandwidth_mb_s=100.0))
        done = {}
        _transfer(env, net, done, "long", "n0", "n1", 100)
        _transfer(env, net, done, "short", "n0", "n1", 50, delay=0.5)
        env.run()
        # long runs alone 0.5 s (50 MB), shares 1.0 s (50 MB each),
        # and both finish together at 1.5 s — remaining-byte carrying
        # across rate changes, no lost or double-counted bandwidth.
        assert done["short"] == pytest.approx(1.5)
        assert done["long"] == pytest.approx(1.5)

    def test_ports_account_bytes_and_quiesce(self, env):
        net = Network(env, NetworkSpec(latency=0.0,
                                       bandwidth_mb_s=100.0))
        done = {}
        _transfer(env, net, done, "a", "n0", "n1", 60)
        _transfer(env, net, done, "b", "n0", "n2", 40)
        env.run()
        egress = net.port("n0", "egress")
        assert egress.active_streams == 0
        assert egress.transfers == 2
        assert egress.bytes_mb == pytest.approx(100.0)
        assert egress.max_streams == 2
        assert net.port("n1", "ingress").bytes_mb == pytest.approx(60.0)
        assert 0.0 < egress.utilisation() <= 1.0

    def test_interrupted_stream_frees_its_share(self, env):
        net = Network(env, NetworkSpec(latency=0.0,
                                       bandwidth_mb_s=100.0))
        done = {}
        _transfer(env, net, done, "keeper", "n0", "n1", 100)
        victim = _transfer(env, net, done, "victim", "n0", "n1", 100)

        def killer(env):
            yield env.timeout(0.5)
            victim.interrupt("cancelled")
        env.process(killer(env))
        env.run()
        # 0.5 s shared (25 MB each), then keeper alone: 75 MB at full
        # rate -> finishes at 1.25 s, not the 2.0 s of two full streams
        assert "victim" not in done
        assert done["keeper"] == pytest.approx(1.25)
        egress = net.port("n0", "egress")
        assert egress.active_streams == 0
        # the victim is charged only for the bytes it actually moved
        assert egress.bytes_mb == pytest.approx(125.0)

    def test_degrade_repricing_applies_mid_stream(self, env):
        net = Network(env, NetworkSpec(latency=0.0,
                                       bandwidth_mb_s=100.0))
        done = {}
        _transfer(env, net, done, "a", "n0", "n1", 100)

        def degrader(env):
            yield env.timeout(0.5)
            net.degrade(bandwidth_scale=2.0)
        env.process(degrader(env))
        env.run()
        # 50 MB at 100 MB/s, then 50 MB at 50 MB/s -> 1.5 s
        assert done["a"] == pytest.approx(1.5)

    def test_interrupted_stream_credits_partial_network_bytes(self, env):
        # Regression: bytes_moved used to charge the full advertised
        # size up front, so a torn-down stream over-counted.
        net = Network(env, NetworkSpec(latency=0.0,
                                       bandwidth_mb_s=100.0))
        done = {}
        _transfer(env, net, done, "keeper", "n0", "n1", 100)
        victim = _transfer(env, net, done, "victim", "n0", "n1", 100)

        def killer(env):
            yield env.timeout(0.5)
            victim.interrupt("cancelled")
        env.process(killer(env))
        env.run()
        # keeper's full 100 MB + the 25 MB the victim moved in its
        # shared half-rate window — not 200 MB
        assert net.bytes_moved == pytest.approx(125.0 * 1e6)
        egress = net.port("n0", "egress")
        assert net.bytes_moved == pytest.approx(egress.bytes_mb * 1e6)

    def test_crash_unwound_stream_credits_partial_bytes(self, env):
        # The node-crash path: the migration manager unwinds the ship
        # pump (interrupt cause "restore failed") while it is inside
        # bulk_transfer.  The stream must credit its partial bytes
        # through the same finally teardown as a caller interrupt.
        net = Network(env, NetworkSpec(latency=0.0,
                                       bandwidth_mb_s=100.0))

        def pump(env):
            try:
                yield from net.bulk_transfer("n0", "n1", 100)
            except Interrupt:
                return
        shipper = env.process(pump(env), name="pump")

        def crasher(env):
            yield env.timeout(0.25)
            shipper.interrupt("restore failed")
        env.process(crasher(env))
        env.run()
        assert net.bytes_moved == pytest.approx(25.0 * 1e6)
        egress = net.port("n0", "egress")
        ingress = net.port("n1", "ingress")
        assert egress.active_streams == 0 and ingress.active_streams == 0
        assert net.bytes_moved == pytest.approx(egress.bytes_mb * 1e6)
        assert net.bytes_moved == pytest.approx(ingress.bytes_mb * 1e6)

    def test_outage_before_stream_charges_no_bytes(self, env):
        from repro.errors import NetworkDown
        net = Network(env, NetworkSpec(latency=0.1,
                                       bandwidth_mb_s=100.0))
        failed = {}

        def player(env):
            try:
                yield from net.bulk_transfer("n0", "n1", 100)
            except NetworkDown:
                failed["seen"] = env.now
        env.process(player(env))

        def outage(env):
            yield env.timeout(0.05)
            net.fail_link()
        env.process(outage(env))
        env.run()
        # the outage hit during the latency hop: no stream ever moved,
        # so nothing is charged anywhere
        assert "seen" in failed
        assert net.bytes_moved == 0.0


def _build_kv_testbed(env, tenants, nodes=("node0", "node1"),
                      keys=12, network_spec=None):
    cluster = Cluster(env, network_spec)
    for name in nodes:
        cluster.add_node(name)
    middleware = Middleware(env, cluster, MiddlewareConfig(
        policy=MADEUS, verify_consistency=True))

    def setup(env):
        for tenant, node, size_mb in tenants:
            yield from setup_kv_tenant(
                cluster.node(node).instance, tenant, keys)
            db = cluster.node(node).instance.tenant(tenant)
            db.size_multiplier = 0.0
            db.fixed_overhead_mb = size_mb
            middleware.register_tenant(tenant, node)
    drive(env, setup(env))
    return cluster, middleware


def _run_schedule(env, middleware, jobs, options=None):
    scheduler = MigrationScheduler(middleware, options)
    for tenant, destination in jobs:
        scheduler.submit(tenant, destination,
                         MigrationOptions(rates=RATES))
    proc = scheduler.start()
    env.run()
    return proc.value


class TestMigrationScheduler:
    def test_concurrent_beats_serialized_wall_clock(self):
        tenants = [("T1", "node0", 32.0), ("T2", "node0", 32.0),
                   ("T3", "node0", 32.0)]
        # serialized: one at a time
        env = Environment()
        cluster, middleware = _build_kv_testbed(env, tenants)

        def serial(env):
            for tenant, _, _ in tenants:
                yield from middleware.migrate(
                    tenant, "node1", MigrationOptions(rates=RATES))
            return env.now
        start = env.now
        serial_wall = drive(env, serial(env)) - start
        # concurrent: same three under the scheduler
        env2 = Environment()
        cluster2, middleware2 = _build_kv_testbed(env2, tenants)
        report = _run_schedule(env2, middleware2,
                               [(t, "node1") for t, _, _ in tenants])
        assert report.ok_count == 3
        assert report.max_in_flight == 3
        assert report.wall_clock < serial_wall * 0.9
        for job in report.jobs:
            assert job.report.consistent is True
            assert middleware2.route(job.tenant) == "node1"

    def test_admission_cap_bounds_in_flight_and_queues(self):
        tenants = [("T1", "node0", 24.0), ("T2", "node0", 24.0),
                   ("T3", "node0", 24.0)]
        env = Environment()
        cluster, middleware = _build_kv_testbed(env, tenants)
        report = _run_schedule(
            env, middleware, [(t, "node1") for t, _, _ in tenants],
            ScheduleOptions(max_concurrent=1))
        assert report.ok_count == 3
        assert report.max_in_flight == 1
        waits = sorted(job.queue_wait for job in report.jobs)
        assert waits[0] == pytest.approx(0.0)
        assert waits[-1] > 0.0
        assert report.total_queue_wait == pytest.approx(sum(waits))
        hist = middleware.metrics.histogram("scheduler.queue_wait")
        assert hist.count == 3

    def test_smallest_first_admits_by_size(self):
        tenants = [("BIG", "node0", 48.0), ("MID", "node0", 24.0),
                   ("TINY", "node0", 8.0)]
        env = Environment()
        cluster, middleware = _build_kv_testbed(env, tenants)
        report = _run_schedule(
            env, middleware, [(t, "node1") for t, _, _ in tenants],
            ScheduleOptions(policy="smallest-first", max_concurrent=1))
        assert [job.tenant for job in report.jobs] == \
            ["TINY", "MID", "BIG"]
        starts = [job.started_at for job in report.jobs]
        assert starts == sorted(starts)

    def test_round_robin_interleaves_sources(self):
        tenants = [("A1", "node0", 8.0), ("A2", "node0", 8.0),
                   ("B1", "node2", 8.0), ("B2", "node2", 8.0)]
        env = Environment()
        cluster, middleware = _build_kv_testbed(
            env, tenants, nodes=("node0", "node1", "node2"))
        report = _run_schedule(
            env, middleware, [(t, "node1") for t, _, _ in tenants],
            ScheduleOptions(policy="round-robin"))
        assert [job.tenant for job in report.jobs] == \
            ["A1", "B1", "A2", "B2"]
        assert report.ok_count == 4

    def test_one_failed_job_does_not_stop_the_schedule(self):
        tenants = [("T1", "node0", 16.0), ("T2", "node0", 16.0)]
        env = Environment()
        cluster, middleware = _build_kv_testbed(env, tenants)
        scheduler = MigrationScheduler(middleware)
        # T1's "migration" to its own node is rejected up front
        scheduler.submit("T1", "node0",
                         MigrationOptions(rates=RATES))
        scheduler.submit("T2", "node1",
                         MigrationOptions(rates=RATES))
        proc = scheduler.start()
        env.run()
        report = proc.value
        bad = report.job("T1")
        assert bad.outcome == "failed"
        assert "already on" in bad.error
        good = report.job("T2")
        assert good.outcome == "ok"
        assert middleware.route("T2") == "node1"

    def test_schedule_observability(self):
        tenants = [("T1", "node0", 16.0), ("T2", "node0", 16.0)]
        env = Environment()
        # wire slower than the dumps, so both snapshot streams are
        # guaranteed to overlap on node0's egress port
        cluster, middleware = _build_kv_testbed(
            env, tenants,
            network_spec=NetworkSpec(latency=0.0001,
                                     bandwidth_mb_s=4.0))
        report = _run_schedule(env, middleware,
                               [(t, "node1") for t, _, _ in tenants])
        gauge = middleware.metrics.gauge("scheduler.concurrent")
        assert gauge.max_value == 2
        assert gauge.value == 0
        assert middleware.metrics.counter(
            "scheduler.jobs_ok").value == 2
        spans = [s for s in middleware.tracer.spans
                 if s.name == "schedule"]
        assert len(spans) == 1 and spans[0].end is not None
        jobs = [s for s in middleware.tracer.spans
                if s.name == "schedule.job"]
        assert len(jobs) == 2
        # the shared link carried both snapshot streams
        assert report.link_utilisation
        assert "node0.egress" in report.link_utilisation
        streams = middleware.metrics.gauge(
            "net.link.node0.egress.streams")
        assert streams.max_value >= 2

    def test_submit_while_running_rejected(self):
        tenants = [("T1", "node0", 16.0)]
        env = Environment()
        cluster, middleware = _build_kv_testbed(env, tenants)
        scheduler = MigrationScheduler(middleware)
        scheduler.submit("T1", "node1", MigrationOptions(rates=RATES))
        scheduler.start()
        env.run(until=env.now + 0.001)
        with pytest.raises(MigrationError):
            scheduler.submit("T1", "node1")
        env.run()

    def test_empty_schedule_reports_cleanly(self, env):
        cluster, middleware = _build_kv_testbed(env, [])
        report = _run_schedule(env, middleware, [])
        assert report.jobs == []
        assert report.ok_count == 0
        assert report.wall_clock == 0.0


def _start_load(env, middleware, tenant, txns=300, clients=4):
    """Live kv load so catch-up has a real backlog to replay (a quiet
    tenant catches up faster than a 0.02 s poll can observe)."""
    from repro.workload.simplekv import KvWorkloadConfig, run_kv_clients
    config = KvWorkloadConfig(keys=12, clients=clients,
                              transactions_per_client=txns,
                              read_only_ratio=0.2, think_time=0.01)
    return run_kv_clients(env, middleware, tenant, config, seed=5)


def _crash_when_catching_up(env, middleware, tenant, instance,
                            give_up_at=120.0):
    """Crash ``instance`` once catch-up is under way for ``tenant``.

    Bounded poll: if catch-up never shows (the scenario went sideways),
    the crasher gives up so ``env.run()`` still terminates and the
    test fails on its assertions instead of hanging.
    """
    def crasher(env):
        state = middleware.tenant_state(tenant)
        while state.propagator is None:
            if env.now > give_up_at:
                return
            yield env.timeout(0.02)
        instance.crash()
    env.process(crasher(env))


class TestSchedulerRecovery:
    def test_transient_failure_retries_into_same_destination(self):
        env = Environment()
        cluster, middleware = _build_kv_testbed(
            env, [("T1", "node0", 8.0)])
        cluster.network.fail_link()

        def healer(env):
            # outlive the ~1 s dump and the first attempt's capped ship
            # retries, so the first whole-job attempt fails before the
            # link comes back
            yield env.timeout(2.5)
            cluster.network.restore_link()
        env.process(healer(env))
        scheduler = MigrationScheduler(
            middleware, ScheduleOptions(retry_limit=5, retry_base=0.2,
                                        retry_cap=1.0))
        # tight ship-retry budget: a single attempt cannot sit out the
        # outage on its own, so recovery must come from the scheduler
        scheduler.submit("T1", "node1", MigrationOptions(
            rates=RATES, retry_limit=1, retry_base=0.01,
            retry_cap=0.02))
        proc = scheduler.start()
        env.run()
        report = proc.value
        job = report.job("T1")
        assert job.outcome == "ok"
        assert job.attempts >= 2
        assert job.excluded_destinations == []
        assert report.retry_count == job.attempts - 1
        assert middleware.route("T1") == "node1"
        assert job.report.consistent is True
        assert middleware.metrics.counter(
            "scheduler.retries").value == job.attempts - 1
        assert any(e.name == "schedule.retry"
                   for e in middleware.tracer.events)

    def test_crashed_destination_excluded_and_alternate_used(self):
        env = Environment()
        cluster, middleware = _build_kv_testbed(
            env, [("T1", "node0", 8.0)],
            nodes=("node0", "node1", "node2"))
        _start_load(env, middleware, "T1")
        _crash_when_catching_up(env, middleware, "T1",
                                cluster.node("node1").instance)
        scheduler = MigrationScheduler(
            middleware, ScheduleOptions(retry_limit=2, retry_base=0.1,
                                        retry_cap=0.5))
        scheduler.submit("T1", "node1", MigrationOptions(rates=RATES),
                         alternates=("node2",))
        proc = scheduler.start()
        env.run()
        report = proc.value
        job = report.job("T1")
        assert job.outcome == "ok"
        assert job.attempts == 2
        assert job.excluded_destinations == ["node1"]
        assert job.destination == "node2"
        assert middleware.route("T1") == "node2"
        assert job.report.consistent is True

    def test_all_candidates_dead_gives_up_with_memory(self):
        env = Environment()
        cluster, middleware = _build_kv_testbed(
            env, [("T1", "node0", 8.0)],
            nodes=("node0", "node1", "node2"))
        _start_load(env, middleware, "T1")
        # both candidate destinations die as soon as they catch up
        _crash_when_catching_up(env, middleware, "T1",
                                cluster.node("node1").instance)

        def second_crasher(env):
            while not cluster.node("node1").instance.crashed:
                if env.now > 120.0:
                    return
                yield env.timeout(0.02)
            state = middleware.tenant_state("T1")
            while state.propagator is None:
                if env.now > 120.0:
                    return
                yield env.timeout(0.02)
            cluster.node("node2").instance.crash()
        env.process(second_crasher(env))
        scheduler = MigrationScheduler(
            middleware, ScheduleOptions(retry_limit=5, retry_base=0.05,
                                        retry_cap=0.1))
        scheduler.submit("T1", "node1", MigrationOptions(rates=RATES),
                         alternates=("node2",))
        proc = scheduler.start()
        env.run()
        job = proc.value.job("T1")
        assert job.outcome == "failed"
        assert job.excluded_destinations == ["node1", "node2"]
        assert job.attempts == 2          # one try per live candidate
        assert middleware.route("T1") == "node0"
        assert middleware.tenant_state("T1").gate.is_open

    def test_source_crash_is_final_and_never_retried(self):
        env = Environment()
        cluster, middleware = _build_kv_testbed(
            env, [("T1", "node0", 8.0)],
            nodes=("node0", "node1", "node2"))
        _start_load(env, middleware, "T1")
        _crash_when_catching_up(env, middleware, "T1",
                                cluster.node("node0").instance)
        scheduler = MigrationScheduler(
            middleware, ScheduleOptions(retry_limit=5, retry_base=0.05,
                                        retry_cap=0.1))
        scheduler.submit("T1", "node1", MigrationOptions(rates=RATES),
                         alternates=("node2",))
        proc = scheduler.start()
        env.run()
        job = proc.value.job("T1")
        assert job.outcome == "aborted"
        assert job.attempts == 1          # final: no retry, no alternate
        assert "source node node0 crashed" in job.error
        assert middleware.route("T1") == "node0"
        assert middleware.metrics.counter(
            "scheduler.retries").value == 0

    def test_aborted_job_is_stamped_with_overlapping_faults(self):
        from repro.faults import FaultInjector, FaultPlan
        env = Environment()
        cluster, middleware = _build_kv_testbed(
            env, [("T1", "node0", 8.0)])
        plan = FaultPlan()
        plan.add("dest-dies", "crash", target="node1",
                 phase="catch-up")
        injector = FaultInjector(env, cluster, plan,
                                 tracer=middleware.tracer,
                                 metrics=middleware.metrics, seed=3)
        injector.start()
        _start_load(env, middleware, "T1")
        report = _run_schedule(env, middleware, [("T1", "node1")])
        job = report.job("T1")
        assert job.outcome == "failed"
        assert job.attempts == 1          # retry_limit defaults to 0
        faults = {record["fault"]: record for record in job.fault_events}
        assert "dest-dies" in faults
        assert faults["dest-dies"]["kind"] == "crash"
        assert faults["dest-dies"]["target"] == "node1"
        assert faults["dest-dies"]["end"] is None      # never healed
        # an ok job carries no fault stamp
        assert all(record["fault"] for record in job.fault_events)
