"""Tests for the shared-link bandwidth model and the multi-tenant
migration scheduler.

Timing assertions are *relative* only (stream A vs stream B, concurrent
vs serialized) per the ROADMAP tolerance policy — never absolute
seconds."""

import pytest

from repro.cluster import Cluster
from repro.core import (
    MADEUS,
    Middleware,
    MiddlewareConfig,
    MigrationOptions,
    MigrationScheduler,
    ScheduleOptions,
)
from repro.engine import TransferRates
from repro.errors import MigrationError
from repro.net import Network, NetworkSpec
from repro.sim import Environment, Interrupt
from repro.workload.simplekv import setup_kv_tenant

from _helpers import drive

RATES = TransferRates(dump_mb_s=8.0, restore_mb_s=4.0, base_mb=64.0,
                      chunk_mb=8.0)


@pytest.fixture
def env():
    return Environment()


def _transfer(env, net, done, name, src, dst, mb, delay=0.0):
    def player(env):
        if delay:
            yield env.timeout(delay)
        try:
            yield from net.bulk_transfer(src, dst, mb)
        except Interrupt:
            return
        done[name] = env.now
    return env.process(player(env), name=name)


class TestLinkContention:
    def test_two_streams_on_one_link_take_twice_as_long(self, env):
        net = Network(env, NetworkSpec(latency=0.0,
                                       bandwidth_mb_s=100.0))
        done = {}
        _transfer(env, net, done, "solo", "n0", "n1", 100)
        env.run()
        solo = done["solo"]
        env2 = Environment()
        net2 = Network(env2, NetworkSpec(latency=0.0,
                                        bandwidth_mb_s=100.0))
        done2 = {}
        _transfer(env2, net2, done2, "a", "n0", "n1", 100)
        _transfer(env2, net2, done2, "b", "n0", "n1", 100)
        env2.run()
        # equal halves of the link: both finish together at ~2x solo
        assert done2["a"] == pytest.approx(done2["b"])
        assert done2["a"] == pytest.approx(2.0 * solo, rel=0.01)

    def test_disjoint_links_do_not_contend(self, env):
        net = Network(env, NetworkSpec(latency=0.0,
                                       bandwidth_mb_s=100.0))
        done = {}
        _transfer(env, net, done, "a", "n0", "n1", 100)
        _transfer(env, net, done, "b", "n2", "n3", 100)
        env.run()
        assert done["a"] == pytest.approx(done["b"])
        solo_env = Environment()
        solo_net = Network(solo_env, NetworkSpec(latency=0.0,
                                                 bandwidth_mb_s=100.0))
        solo_done = {}
        _transfer(solo_env, solo_net, solo_done, "solo",
                  "n0", "n1", 100)
        solo_env.run()
        assert done["a"] == pytest.approx(solo_done["solo"])

    def test_late_joiner_slows_then_leaves_and_speeds_up(self, env):
        net = Network(env, NetworkSpec(latency=0.0,
                                       bandwidth_mb_s=100.0))
        done = {}
        _transfer(env, net, done, "long", "n0", "n1", 100)
        _transfer(env, net, done, "short", "n0", "n1", 50, delay=0.5)
        env.run()
        # long runs alone 0.5 s (50 MB), shares 1.0 s (50 MB each),
        # and both finish together at 1.5 s — remaining-byte carrying
        # across rate changes, no lost or double-counted bandwidth.
        assert done["short"] == pytest.approx(1.5)
        assert done["long"] == pytest.approx(1.5)

    def test_ports_account_bytes_and_quiesce(self, env):
        net = Network(env, NetworkSpec(latency=0.0,
                                       bandwidth_mb_s=100.0))
        done = {}
        _transfer(env, net, done, "a", "n0", "n1", 60)
        _transfer(env, net, done, "b", "n0", "n2", 40)
        env.run()
        egress = net.port("n0", "egress")
        assert egress.active_streams == 0
        assert egress.transfers == 2
        assert egress.bytes_mb == pytest.approx(100.0)
        assert egress.max_streams == 2
        assert net.port("n1", "ingress").bytes_mb == pytest.approx(60.0)
        assert 0.0 < egress.utilisation() <= 1.0

    def test_interrupted_stream_frees_its_share(self, env):
        net = Network(env, NetworkSpec(latency=0.0,
                                       bandwidth_mb_s=100.0))
        done = {}
        _transfer(env, net, done, "keeper", "n0", "n1", 100)
        victim = _transfer(env, net, done, "victim", "n0", "n1", 100)

        def killer(env):
            yield env.timeout(0.5)
            victim.interrupt("cancelled")
        env.process(killer(env))
        env.run()
        # 0.5 s shared (25 MB each), then keeper alone: 75 MB at full
        # rate -> finishes at 1.25 s, not the 2.0 s of two full streams
        assert "victim" not in done
        assert done["keeper"] == pytest.approx(1.25)
        egress = net.port("n0", "egress")
        assert egress.active_streams == 0
        # the victim is charged only for the bytes it actually moved
        assert egress.bytes_mb == pytest.approx(125.0)

    def test_degrade_repricing_applies_mid_stream(self, env):
        net = Network(env, NetworkSpec(latency=0.0,
                                       bandwidth_mb_s=100.0))
        done = {}
        _transfer(env, net, done, "a", "n0", "n1", 100)

        def degrader(env):
            yield env.timeout(0.5)
            net.degrade(bandwidth_scale=2.0)
        env.process(degrader(env))
        env.run()
        # 50 MB at 100 MB/s, then 50 MB at 50 MB/s -> 1.5 s
        assert done["a"] == pytest.approx(1.5)


def _build_kv_testbed(env, tenants, nodes=("node0", "node1"),
                      keys=12, network_spec=None):
    cluster = Cluster(env, network_spec)
    for name in nodes:
        cluster.add_node(name)
    middleware = Middleware(env, cluster, MiddlewareConfig(
        policy=MADEUS, verify_consistency=True))

    def setup(env):
        for tenant, node, size_mb in tenants:
            yield from setup_kv_tenant(
                cluster.node(node).instance, tenant, keys)
            db = cluster.node(node).instance.tenant(tenant)
            db.size_multiplier = 0.0
            db.fixed_overhead_mb = size_mb
            middleware.register_tenant(tenant, node)
    drive(env, setup(env))
    return cluster, middleware


def _run_schedule(env, middleware, jobs, options=None):
    scheduler = MigrationScheduler(middleware, options)
    for tenant, destination in jobs:
        scheduler.submit(tenant, destination,
                         MigrationOptions(rates=RATES))
    proc = scheduler.start()
    env.run()
    return proc.value


class TestMigrationScheduler:
    def test_concurrent_beats_serialized_wall_clock(self):
        tenants = [("T1", "node0", 32.0), ("T2", "node0", 32.0),
                   ("T3", "node0", 32.0)]
        # serialized: one at a time
        env = Environment()
        cluster, middleware = _build_kv_testbed(env, tenants)

        def serial(env):
            for tenant, _, _ in tenants:
                yield from middleware.migrate(
                    tenant, "node1", MigrationOptions(rates=RATES))
            return env.now
        start = env.now
        serial_wall = drive(env, serial(env)) - start
        # concurrent: same three under the scheduler
        env2 = Environment()
        cluster2, middleware2 = _build_kv_testbed(env2, tenants)
        report = _run_schedule(env2, middleware2,
                               [(t, "node1") for t, _, _ in tenants])
        assert report.ok_count == 3
        assert report.max_in_flight == 3
        assert report.wall_clock < serial_wall * 0.9
        for job in report.jobs:
            assert job.report.consistent is True
            assert middleware2.route(job.tenant) == "node1"

    def test_admission_cap_bounds_in_flight_and_queues(self):
        tenants = [("T1", "node0", 24.0), ("T2", "node0", 24.0),
                   ("T3", "node0", 24.0)]
        env = Environment()
        cluster, middleware = _build_kv_testbed(env, tenants)
        report = _run_schedule(
            env, middleware, [(t, "node1") for t, _, _ in tenants],
            ScheduleOptions(max_concurrent=1))
        assert report.ok_count == 3
        assert report.max_in_flight == 1
        waits = sorted(job.queue_wait for job in report.jobs)
        assert waits[0] == pytest.approx(0.0)
        assert waits[-1] > 0.0
        assert report.total_queue_wait == pytest.approx(sum(waits))
        hist = middleware.metrics.histogram("scheduler.queue_wait")
        assert hist.count == 3

    def test_smallest_first_admits_by_size(self):
        tenants = [("BIG", "node0", 48.0), ("MID", "node0", 24.0),
                   ("TINY", "node0", 8.0)]
        env = Environment()
        cluster, middleware = _build_kv_testbed(env, tenants)
        report = _run_schedule(
            env, middleware, [(t, "node1") for t, _, _ in tenants],
            ScheduleOptions(policy="smallest-first", max_concurrent=1))
        assert [job.tenant for job in report.jobs] == \
            ["TINY", "MID", "BIG"]
        starts = [job.started_at for job in report.jobs]
        assert starts == sorted(starts)

    def test_round_robin_interleaves_sources(self):
        tenants = [("A1", "node0", 8.0), ("A2", "node0", 8.0),
                   ("B1", "node2", 8.0), ("B2", "node2", 8.0)]
        env = Environment()
        cluster, middleware = _build_kv_testbed(
            env, tenants, nodes=("node0", "node1", "node2"))
        report = _run_schedule(
            env, middleware, [(t, "node1") for t, _, _ in tenants],
            ScheduleOptions(policy="round-robin"))
        assert [job.tenant for job in report.jobs] == \
            ["A1", "B1", "A2", "B2"]
        assert report.ok_count == 4

    def test_one_failed_job_does_not_stop_the_schedule(self):
        tenants = [("T1", "node0", 16.0), ("T2", "node0", 16.0)]
        env = Environment()
        cluster, middleware = _build_kv_testbed(env, tenants)
        scheduler = MigrationScheduler(middleware)
        # T1's "migration" to its own node is rejected up front
        scheduler.submit("T1", "node0",
                         MigrationOptions(rates=RATES))
        scheduler.submit("T2", "node1",
                         MigrationOptions(rates=RATES))
        proc = scheduler.start()
        env.run()
        report = proc.value
        bad = report.job("T1")
        assert bad.outcome == "failed"
        assert "already on" in bad.error
        good = report.job("T2")
        assert good.outcome == "ok"
        assert middleware.route("T2") == "node1"

    def test_schedule_observability(self):
        tenants = [("T1", "node0", 16.0), ("T2", "node0", 16.0)]
        env = Environment()
        # wire slower than the dumps, so both snapshot streams are
        # guaranteed to overlap on node0's egress port
        cluster, middleware = _build_kv_testbed(
            env, tenants,
            network_spec=NetworkSpec(latency=0.0001,
                                     bandwidth_mb_s=4.0))
        report = _run_schedule(env, middleware,
                               [(t, "node1") for t, _, _ in tenants])
        gauge = middleware.metrics.gauge("scheduler.concurrent")
        assert gauge.max_value == 2
        assert gauge.value == 0
        assert middleware.metrics.counter(
            "scheduler.jobs_ok").value == 2
        spans = [s for s in middleware.tracer.spans
                 if s.name == "schedule"]
        assert len(spans) == 1 and spans[0].end is not None
        jobs = [s for s in middleware.tracer.spans
                if s.name == "schedule.job"]
        assert len(jobs) == 2
        # the shared link carried both snapshot streams
        assert report.link_utilisation
        assert "node0.egress" in report.link_utilisation
        streams = middleware.metrics.gauge(
            "net.link.node0.egress.streams")
        assert streams.max_value >= 2

    def test_submit_while_running_rejected(self):
        tenants = [("T1", "node0", 16.0)]
        env = Environment()
        cluster, middleware = _build_kv_testbed(env, tenants)
        scheduler = MigrationScheduler(middleware)
        scheduler.submit("T1", "node1", MigrationOptions(rates=RATES))
        scheduler.start()
        env.run(until=env.now + 0.001)
        with pytest.raises(MigrationError):
            scheduler.submit("T1", "node1")
        env.run()

    def test_empty_schedule_reports_cleanly(self, env):
        cluster, middleware = _build_kv_testbed(env, [])
        report = _run_schedule(env, middleware, [])
        assert report.jobs == []
        assert report.ok_count == 0
        assert report.wall_clock == 0.0
