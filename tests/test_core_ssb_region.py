"""Tests for syncset buffers, the SSL, and the critical region."""

import pytest

from repro.core import (COMMIT_CLASS, EXCLUSIVE_CLASS, FIRST_READ_CLASS,
                        CriticalRegion, Operation, OpKind, SyncsetBuffer,
                        SyncsetList)
from repro.engine import parse

from _helpers import drive


def _op(kind, sql="SELECT v FROM t WHERE k = 1"):
    return Operation(kind, sql, parse(sql))


def _ssb(sts, ets=None, writes=1):
    ssb = SyncsetBuffer(sts=sts)
    ssb.save(_op(OpKind.FIRST_READ))
    for index in range(writes):
        ssb.save(_op(OpKind.WRITE, "UPDATE t SET v = %d WHERE k = 1"
                     % index))
    if ets is not None:
        ssb.ets = ets
        ssb.save(_op(OpKind.COMMIT, "COMMIT"))
    return ssb


class TestSyncsetBuffer:
    def test_fifo_entry_order(self):
        ssb = _ssb(sts=3, ets=5, writes=3)
        kinds = [op.kind for op in ssb.entries]
        assert kinds == [OpKind.FIRST_READ, OpKind.WRITE, OpKind.WRITE,
                         OpKind.WRITE, OpKind.COMMIT]

    def test_first_operation(self):
        ssb = _ssb(sts=1, ets=1)
        assert ssb.first_operation.kind == OpKind.FIRST_READ

    def test_first_operation_empty_raises(self):
        with pytest.raises(ValueError):
            SyncsetBuffer(sts=0).first_operation

    def test_write_operations_in_order(self):
        ssb = _ssb(sts=1, ets=1, writes=2)
        sqls = [op.sql for op in ssb.write_operations]
        assert sqls == ["UPDATE t SET v = 0 WHERE k = 1",
                        "UPDATE t SET v = 1 WHERE k = 1"]

    def test_commit_operation(self):
        ssb = _ssb(sts=1, ets=2)
        assert ssb.commit_operation.kind == OpKind.COMMIT

    def test_commit_operation_missing_raises(self):
        with pytest.raises(ValueError):
            _ssb(sts=1).commit_operation

    def test_ids_unique(self):
        assert SyncsetBuffer(1).ssb_id != SyncsetBuffer(1).ssb_id


class TestSyncsetList:
    def test_link_requires_ets(self):
        ssl = SyncsetList()
        with pytest.raises(ValueError):
            ssl.link(_ssb(sts=1), now=0.0)

    def test_link_and_counts(self):
        ssl = SyncsetList()
        ssl.link(_ssb(1, 1), 0.0)
        ssl.link(_ssb(1, 2), 0.1)
        ssl.link(_ssb(2, 2), 0.2)
        assert ssl.pending_count() == 3
        assert ssl.linked_total == 3
        assert not ssl.is_empty()

    def test_smallest_sts_over_linked(self):
        ssl = SyncsetList()
        ssl.link(_ssb(5, 6), 0.0)
        ssl.link(_ssb(3, 4), 0.0)
        assert ssl.smallest_sts() == 3
        assert ssl.smallest_linked_sts() == 3

    def test_smallest_sts_includes_open(self):
        """The conductor must not advance past a running transaction's
        snapshot point."""
        ssl = SyncsetList()
        ssl.link(_ssb(5, 6), 0.0)
        open_ssb = _ssb(2)
        ssl.register_open(open_ssb)
        assert ssl.smallest_sts() == 2
        assert ssl.smallest_linked_sts() == 5
        ssl.resolve_open(open_ssb)
        assert ssl.smallest_sts() == 5

    def test_smallest_sts_empty_is_none(self):
        assert SyncsetList().smallest_sts() is None

    def test_open_with_sts(self):
        ssl = SyncsetList()
        ssl.register_open(_ssb(4))
        ssl.register_open(_ssb(4))
        ssl.register_open(_ssb(9))
        assert ssl.open_with_sts(4) == 2
        assert ssl.open_with_sts(9) == 1
        assert ssl.open_with_sts(5) == 0

    def test_take_group_removes(self):
        ssl = SyncsetList()
        a, b = _ssb(1, 1), _ssb(1, 2)
        ssl.link(a, 0.0)
        ssl.link(b, 0.0)
        ssl.link(_ssb(2, 3), 0.0)
        group = ssl.take_group(1)
        assert set(s.ssb_id for s in group) == {a.ssb_id, b.ssb_id}
        assert ssl.pending_count() == 1

    def test_take_group_missing_sts_empty(self):
        assert SyncsetList().take_group(7) == []

    def test_take_all_orders_by_sts_then_ets(self):
        ssl = SyncsetList()
        order = [(2, 5), (1, 3), (1, 2), (3, 6)]
        for sts, ets in order:
            ssl.link(_ssb(sts, ets), 0.0)
        drained = ssl.take_all()
        assert [(s.sts, s.ets) for s in drained] == \
            [(1, 2), (1, 3), (2, 5), (3, 6)]
        assert ssl.is_empty()

    def test_resolve_unregistered_open_is_noop(self):
        ssl = SyncsetList()
        ssl.resolve_open(_ssb(1))
        assert ssl.open_count() == 0


class TestCriticalRegion:
    def test_same_class_overlaps(self, env):
        region = CriticalRegion(env)
        times = []

        def enterer(env, tag):
            yield from region.enter(COMMIT_CLASS)
            times.append((tag, env.now))
            yield env.timeout(1)
            region.leave()
        env.process(enterer(env, "a"))
        env.process(enterer(env, "b"))
        env.run()
        assert times == [("a", 0), ("b", 0)]
        assert region.contended_entries == 0

    def test_different_classes_exclude(self, env):
        region = CriticalRegion(env)
        times = []

        def enterer(env, op_class, tag, hold):
            yield from region.enter(op_class)
            times.append((tag, env.now))
            yield env.timeout(hold)
            region.leave()
        env.process(enterer(env, FIRST_READ_CLASS, "read", 2))
        env.process(enterer(env, COMMIT_CLASS, "commit", 1))
        env.run()
        assert times == [("read", 0), ("commit", 2)]
        assert region.contended_entries == 1

    def test_batch_grant_same_class(self, env):
        """When the region drains, the whole same-class prefix of the
        wait queue enters together (group commit survives)."""
        region = CriticalRegion(env)
        times = []

        def enterer(env, op_class, tag, hold, delay=0.0):
            yield env.timeout(delay)
            yield from region.enter(op_class)
            times.append((tag, env.now))
            yield env.timeout(hold)
            region.leave()
        env.process(enterer(env, FIRST_READ_CLASS, "r", 3))
        env.process(enterer(env, COMMIT_CLASS, "c1", 1, delay=0.5))
        env.process(enterer(env, COMMIT_CLASS, "c2", 1, delay=0.6))
        env.run()
        assert times == [("r", 0), ("c1", 3), ("c2", 3)]

    def test_fifo_between_classes_prevents_starvation(self, env):
        region = CriticalRegion(env)
        times = []

        def enterer(env, op_class, tag, delay):
            yield env.timeout(delay)
            yield from region.enter(op_class)
            times.append(tag)
            yield env.timeout(1)
            region.leave()
        env.process(enterer(env, COMMIT_CLASS, "c1", 0.0))
        env.process(enterer(env, FIRST_READ_CLASS, "r1", 0.1))
        # c2 arrives after r1 queued; it must NOT jump the queue even
        # though c1 (same class) is active
        env.process(enterer(env, COMMIT_CLASS, "c2", 0.2))
        env.run()
        assert times == ["c1", "r1", "c2"]

    def test_exclusive_class_excludes_itself(self, env):
        region = CriticalRegion(env)
        times = []

        def enterer(env, tag):
            yield from region.enter(EXCLUSIVE_CLASS)
            times.append((tag, env.now))
            yield env.timeout(1)
            region.leave()
        env.process(enterer(env, "x"))
        env.process(enterer(env, "y"))
        env.run()
        assert times == [("x", 0), ("y", 1)]

    def test_leave_when_empty_raises(self, env):
        with pytest.raises(RuntimeError):
            CriticalRegion(env).leave()

    def test_busy_property(self, env):
        region = CriticalRegion(env)

        def proc(env):
            yield from region.enter(COMMIT_CLASS)
            busy = region.busy
            region.leave()
            return (busy, region.busy)
        assert drive(env, proc(env)) == (True, False)
