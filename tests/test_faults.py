"""Unit tests for the fault-injection subsystem (repro.faults) and the
fault surfaces it drives: network outages/degradation, node crash +
WAL-replay restart, and disk stalls."""

import pytest

from repro.cluster import Cluster
from repro.engine.session import Session
from repro.errors import NetworkDown
from repro.faults import (FailureModel, FaultInjector, FaultPlan,
                          FaultSpec, generate_plan)
from repro.obs import MetricsRegistry, Tracer


class TestFaultPlan:
    def test_add_validates_and_appends(self):
        plan = FaultPlan()
        plan.add("boom", "crash", target="node1", phase="catch-up")
        plan.add("flap", "link_down", duration=0.5)
        assert len(plan) == 2
        assert [spec.name for spec in plan] == ["boom", "flap"]

    def test_round_trip_through_dicts(self):
        plan = FaultPlan()
        plan.add("slow", "latency", at=1.0, duration=2.0, factor=5.0)
        rebuilt = FaultPlan.from_dicts(plan.to_dicts())
        assert rebuilt.faults == plan.faults

    @pytest.mark.parametrize("kwargs, message", [
        (dict(name="", kind="crash", target="n"), "non-empty name"),
        (dict(name="x", kind="meteor"), "unknown fault kind"),
        (dict(name="x", kind="crash"), "needs a target"),
        (dict(name="x", kind="disk_stall"), "needs a target"),
        (dict(name="x", kind="link_down", at=-1.0), "negative offset"),
        (dict(name="x", kind="link_down", duration=-1.0),
         "negative duration"),
        (dict(name="x", kind="latency", factor=0.0), "must be positive"),
        (dict(name="x", kind="disk_stall", target="n"),
         "positive duration"),
        (dict(name="x", kind="crash", target="n", phase="warp"),
         "unknown phase"),
    ])
    def test_validation_rejects_malformed_specs(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            FaultSpec(**kwargs).validate()

    def test_duplicate_names_rejected(self):
        plan = FaultPlan()
        plan.add("dup", "link_down")
        plan.add("dup2", "link_down")
        plan.faults.append(FaultSpec(name="dup", kind="link_down"))
        with pytest.raises(ValueError, match="duplicate"):
            plan.validate()


class TestNetworkFaults:
    def test_down_link_raises_at_hop_entry(self, env):
        cluster = Cluster(env)
        network = cluster.network

        def main(env):
            network.fail_link()
            with pytest.raises(NetworkDown):
                yield from network.message()
            network.restore_link()
            yield from network.message()   # healthy again
        process = env.process(main(env))
        env.run()
        assert process.ok
        assert network.messages_failed == 1
        assert network.outages == 1

    def test_outage_interrupts_inflight_transfer(self, env):
        cluster = Cluster(env)
        network = cluster.network
        outcome = {}

        def sender(env):
            try:
                # 50 MB at 125 MB/s: on the wire for 0.4 s
                yield from network.message(50.0)
            except NetworkDown:
                outcome["failed_at"] = env.now

        def breaker(env):
            yield env.timeout(0.01)
            network.fail_link()
        env.process(sender(env))
        env.process(breaker(env))
        env.run()
        # the sender learns of the outage when the transfer completes,
        # not at its next send
        assert outcome["failed_at"] == pytest.approx(0.4001)

    def test_nested_outages_stack(self, env):
        network = Cluster(env).network
        network.fail_link()
        network.fail_link()
        network.restore_link()
        assert network.is_down
        network.restore_link()
        assert not network.is_down

    def test_latency_degradation_scales_hop_time(self, env):
        network = Cluster(env).network
        network.degrade(latency_scale=10.0)

        def main(env):
            yield from network.message()
        env.process(main(env))
        env.run()
        assert env.now == pytest.approx(network.spec.latency * 10.0)

    def test_bandwidth_collapse_scales_transfer_time(self, env):
        network = Cluster(env).network
        network.degrade(bandwidth_scale=5.0)

        def main(env):
            yield from network.message(125.0)
        env.process(main(env))
        env.run()
        # 125 MB at 125/5 MB/s = 5 s, plus one latency hop
        assert env.now == pytest.approx(5.0 + network.spec.latency)

    def test_degradations_compose_and_restore(self, env):
        network = Cluster(env).network
        network.degrade(latency_scale=4.0)
        network.degrade(latency_scale=2.0, bandwidth_scale=3.0)
        assert network.latency_factor == pytest.approx(8.0)
        assert network.bandwidth_factor == pytest.approx(3.0)
        network.degrade(latency_scale=0.5)
        assert network.latency_factor == pytest.approx(4.0)
        network.restore_quality()
        assert network.latency_factor == 1.0
        assert network.bandwidth_factor == 1.0


def _seed_rows(env, instance, keys=5):
    """Create tenant A with ``keys`` committed rows; returns a session."""
    session = Session(instance, "A")

    def main(env):
        instance.create_tenant("A")
        yield from session.execute(
            "CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        for key in range(keys):
            yield from session.execute("BEGIN")
            yield from session.execute(
                "INSERT INTO kv (k, v) VALUES (%d, 0)" % key)
            yield from session.execute("COMMIT")
    env.process(main(env))
    env.run()
    return session


class TestNodeCrash:
    def test_statements_fail_while_crashed(self, env):
        instance = Cluster(env).add_node("node0").instance
        session = _seed_rows(env, instance)
        instance.crash()
        assert instance.crashed

        def main(env):
            result = yield from session.execute("BEGIN")
            return result
        process = env.process(main(env))
        env.run()
        assert not process.value.ok
        assert "crashed" in process.value.error

    def test_crash_is_idempotent(self, env):
        instance = Cluster(env).add_node("node0").instance
        instance.crash()
        instance.crash()
        assert instance.crash_count == 1

    def test_committed_data_survives_restart(self, env):
        instance = Cluster(env).add_node("node0").instance
        session = _seed_rows(env, instance, keys=7)
        instance.crash()

        def main(env):
            yield from instance.restart()
            result = yield from session.execute(
                "SELECT v FROM kv WHERE k = 6")
            return result
        process = env.process(main(env))
        env.run()
        assert not instance.crashed
        assert instance.recoveries == 1
        assert process.value.ok
        assert process.value.rows[0]["v"] == 0

    def test_restart_replays_wal_on_the_clock(self, env):
        instance = Cluster(env).add_node("node0").instance
        _seed_rows(env, instance, keys=10)
        instance.crash()
        before = env.now

        def main(env):
            yield from instance.restart()
        env.process(main(env))
        env.run()
        # recovery reads the commit records back and burns replay CPU
        assert env.now > before
        assert instance._replayed_commits == instance.wal.commit_count

    def test_open_transaction_dies_with_the_node(self, env):
        instance = Cluster(env).add_node("node0").instance
        session = _seed_rows(env, instance)
        outcome = {}

        def writer(env):
            yield from session.execute("BEGIN")
            yield from session.execute(
                "UPDATE kv SET v = v + 1 WHERE k = 0")
            instance.crash()
            result = yield from session.execute("COMMIT")
            outcome["commit"] = result
            yield from instance.restart()
            result = yield from session.execute(
                "SELECT v FROM kv WHERE k = 0")
            outcome["read"] = result
        env.process(writer(env))
        env.run()
        assert not outcome["commit"].ok
        # the uncommitted update was lost with the crash
        assert outcome["read"].rows[0]["v"] == 0


class TestDiskStall:
    def test_stall_delays_queued_io(self, env):
        instance = Cluster(env).add_node("node0").instance
        disk = instance.disk
        finished = {}

        def staller(env):
            yield from disk.stall(1.0)

        def reader(env):
            yield env.timeout(0.01)     # queue behind the stall
            yield from disk.read(1.0)
            finished["at"] = env.now
        env.process(staller(env))
        env.process(reader(env))
        env.run()
        assert finished["at"] >= 1.0
        assert disk.stalls == 1
        assert disk.stall_time == pytest.approx(1.0)


class TestFaultInjector:
    def _build(self, env, plan, tracer=None):
        cluster = Cluster(env)
        cluster.add_node("node0")
        cluster.add_node("node1")
        metrics = MetricsRegistry()
        injector = FaultInjector(env, cluster, plan, tracer=tracer,
                                 metrics=metrics)
        return cluster, metrics, injector

    def test_absolute_time_crash_and_recovery(self, env):
        plan = FaultPlan()
        plan.add("crash0", "crash", target="node0", at=1.0, duration=2.0)
        cluster, metrics, injector = self._build(env, plan)
        instance = cluster.node("node0").instance
        injector.start()
        env.run(until=1.5)
        assert instance.crashed
        env.run(until=4.0)
        assert not instance.crashed
        assert metrics.counter("faults.injected").value == 1
        assert metrics.counter("faults.injected.crash").value == 1
        assert metrics.counter("faults.recovered").value == 1
        assert [spec.name for _t, spec in injector.injected] == ["crash0"]

    def test_link_down_window(self, env):
        plan = FaultPlan()
        plan.add("flap", "link_down", at=0.5, duration=1.0)
        cluster, _metrics, injector = self._build(env, plan)
        injector.start()
        env.run(until=1.0)
        assert cluster.network.is_down
        env.run(until=2.0)
        assert not cluster.network.is_down

    def test_degradation_window_restores_factors(self, env):
        plan = FaultPlan()
        plan.add("slow", "latency", at=0.0, duration=1.0, factor=8.0)
        plan.add("thin", "bandwidth", at=0.0, duration=1.0, factor=4.0)
        cluster, _metrics, injector = self._build(env, plan)
        injector.start()
        env.run(until=0.5)
        assert cluster.network.latency_factor == pytest.approx(8.0)
        assert cluster.network.bandwidth_factor == pytest.approx(4.0)
        env.run(until=2.0)
        assert cluster.network.latency_factor == pytest.approx(1.0)
        assert cluster.network.bandwidth_factor == pytest.approx(1.0)

    def test_emits_trace_events(self, env):
        tracer = Tracer(env)
        plan = FaultPlan()
        plan.add("stall", "disk_stall", target="node1", at=0.2,
                 duration=0.3)
        _cluster, _metrics, injector = self._build(env, plan,
                                                   tracer=tracer)
        injector.start()
        env.run()
        names = [event.name for event in tracer.events]
        assert names == ["fault.injected", "fault.recovered"]
        assert tracer.events[0].attrs["fault"] == "stall"
        assert tracer.events[0].attrs["kind"] == "disk_stall"

    def test_phase_anchored_fault_requires_tracer(self, env):
        plan = FaultPlan()
        plan.add("late", "crash", target="node0", phase="catch-up")
        _cluster, _metrics, injector = self._build(env, plan)
        with pytest.raises(ValueError, match="tracer"):
            injector.start()

    def test_start_twice_rejected(self, env):
        _cluster, _metrics, injector = self._build(env, FaultPlan())
        injector.start()
        with pytest.raises(RuntimeError):
            injector.start()

    def test_phase_anchored_fault_waits_for_phase_span(self, env):
        tracer = Tracer(env)
        plan = FaultPlan()
        plan.add("mid", "link_down", phase="catch-up", duration=0.5)
        cluster, _metrics, injector = self._build(env, plan,
                                                  tracer=tracer)
        injector.start()
        env.run(until=5.0)
        assert not cluster.network.is_down   # phase never opened

        def opener(env):
            yield env.timeout(1.0)
            tracer.phase("catch-up")
        env.process(opener(env))
        env.run(until=7.0)
        assert len(injector.injected) == 1
        # injected shortly after the phase opened (poll granularity)
        time, spec = injector.injected[0]
        assert spec.name == "mid"
        assert 6.0 <= time <= 6.0 + 3 * FaultInjector.POLL_INTERVAL


class TestChainedFaults:
    def _build(self, env, plan, tracer=None, seed=None):
        cluster = Cluster(env)
        cluster.add_node("node0")
        cluster.add_node("node1")
        metrics = MetricsRegistry()
        injector = FaultInjector(env, cluster, plan, tracer=tracer,
                                 metrics=metrics, seed=seed)
        return cluster, metrics, injector

    @pytest.mark.parametrize("mutate, message", [
        (lambda p: p.add("b", "link_down", after="ghost"),
         "unknown fault"),
        (lambda p: p.add("b", "link_down", after="a",
                         after_event="recovered"),
         "never recovers"),
        (lambda p: p.faults.extend([
            FaultSpec(name="b", kind="link_down", after="c"),
            FaultSpec(name="c", kind="link_down", after="b")]),
         "cycle"),
    ])
    def test_plan_validation_rejects_broken_chains(self, mutate, message):
        plan = FaultPlan()
        plan.add("a", "link_down")           # permanent (duration 0)
        mutate(plan)
        with pytest.raises(ValueError, match=message):
            plan.validate()

    def test_spec_validation_rejects_bad_chain_fields(self):
        with pytest.raises(ValueError, match="unknown after_event"):
            FaultSpec(name="x", kind="link_down", after="y",
                      after_event="exploded").validate()
        with pytest.raises(ValueError, match="chain to itself"):
            FaultSpec(name="x", kind="link_down", after="x").validate()

    def test_after_injected_offsets_from_upstream_injection(self, env):
        plan = FaultPlan()
        plan.add("first", "link_down", at=1.0, duration=0.5)
        plan.add("second", "crash", target="node0", after="first",
                 at=0.2, duration=0.1)
        _cluster, _metrics, injector = self._build(env, plan)
        injector.start()
        env.run()
        times = {spec.name: time for time, spec in injector.injected}
        assert times["first"] == pytest.approx(1.0)
        assert times["second"] == pytest.approx(1.2)

    def test_after_recovered_fires_when_upstream_heals(self, env):
        plan = FaultPlan()
        plan.add("first", "link_down", at=0.5, duration=0.5)
        plan.add("second", "crash", target="node0", after="first",
                 after_event="recovered")
        cluster, _metrics, injector = self._build(env, plan)
        injector.start()
        env.run(until=0.9)
        assert not cluster.node("node0").instance.crashed
        env.run()
        times = {spec.name: time for time, spec in injector.injected}
        assert times["second"] == pytest.approx(1.0)
        assert cluster.node("node0").instance.crashed   # permanent

    def test_fault_spans_overlap_and_permanent_stays_open(self, env):
        from repro.obs.trace import FAULT
        tracer = Tracer(env)
        plan = FaultPlan()
        plan.add("flap", "link_down", at=0.0, duration=1.0)
        plan.add("dead", "crash", target="node1", at=0.5)  # permanent
        _cluster, metrics, injector = self._build(env, plan,
                                                  tracer=tracer)
        injector.start()
        env.run(until=2.0)
        spans = {s.name: s for s in tracer.spans if s.kind == FAULT}
        assert spans["flap"].end == pytest.approx(1.0)
        assert spans["flap"].attrs["outcome"] == "recovered"
        assert spans["dead"].end is None            # never healed
        # both were active together inside [0.5, 1.0)
        assert spans["dead"].start < spans["flap"].end
        assert metrics.gauge("faults.active").value == 1

    def test_trigger_after_the_fact_is_already_fired(self, env):
        plan = FaultPlan()
        plan.add("early", "link_down", at=0.1, duration=0.1)
        _cluster, _metrics, injector = self._build(env, plan)
        injector.start()
        env.run()
        assert injector.trigger("early", "injected").triggered
        assert injector.trigger("early", "recovered").triggered

    def test_seeded_arming_order_replays_identically(self):
        from repro.sim import Environment

        def run_once(seed):
            env = Environment()
            plan = FaultPlan()
            # three same-instant faults: arming order breaks the tie
            plan.add("a", "link_down", at=0.2, duration=0.1)
            plan.add("b", "latency", at=0.2, duration=0.1, factor=2.0)
            plan.add("c", "bandwidth", at=0.2, duration=0.1, factor=2.0)
            _cluster, _metrics, injector = self._build(env, plan,
                                                       seed=seed)
            injector.start()
            env.run()
            return [spec.name for _t, spec in injector.injected]

        assert run_once(11) == run_once(11)
        assert run_once(12) == run_once(12)


class TestFromDictsStrictness:
    def test_unknown_key_names_the_fault_and_the_key(self):
        records = [{"name": "boom", "kind": "crash", "target": "node0",
                    "durration": 2.0}]
        with pytest.raises(ValueError) as excinfo:
            FaultPlan.from_dicts(records)
        message = str(excinfo.value)
        assert "boom" in message
        assert "durration" in message
        # The error teaches the fix: it lists the accepted keys.
        assert "duration" in message

    def test_multiple_unknown_keys_all_reported(self):
        records = [{"name": "x", "kind": "link_down", "strt": 1.0,
                    "colour": "red"}]
        with pytest.raises(ValueError, match="'colour', 'strt'"):
            FaultPlan.from_dicts(records)

    def test_known_keys_round_trip(self):
        records = [{"name": "slow", "kind": "latency", "at": 1.0,
                    "duration": 2.0, "factor": 3.0}]
        plan = FaultPlan.from_dicts(records)
        assert plan.to_dicts()[0]["factor"] == 3.0

    def test_injector_constructor_validates_the_plan(self, env):
        plan = FaultPlan()
        plan.faults.append(FaultSpec(name="x", kind="crash"))
        cluster = Cluster(env)
        cluster.add_node("node0")
        with pytest.raises(ValueError, match="needs a target"):
            FaultInjector(env, cluster, plan,
                          metrics=MetricsRegistry())


class TestInjectorClose:
    def _build(self, env, plan, tracer=None):
        cluster = Cluster(env)
        cluster.add_node("node0")
        cluster.add_node("node1")
        metrics = MetricsRegistry()
        injector = FaultInjector(env, cluster, plan, tracer=tracer,
                                 metrics=metrics)
        return cluster, metrics, injector

    def test_close_drains_the_active_gauge(self, env):
        tracer = Tracer(env)
        plan = FaultPlan()
        plan.add("dead", "crash", target="node0", at=0.5)  # permanent
        plan.add("flap", "link_down", at=0.2, duration=0.1)
        _cluster, metrics, injector = self._build(env, plan,
                                                  tracer=tracer)
        injector.start()
        env.run(until=2.0)
        assert metrics.gauge("faults.active").value == 1
        injector.close()
        assert metrics.gauge("faults.active").value == 0
        assert metrics.counter("faults.unrecovered").value == 1
        # recovered stays honest: close() is not a recovery
        assert metrics.counter("faults.recovered").value == 1
        names = [event.name for event in tracer.events]
        assert names.count("fault.unrecovered") == 1
        unrecovered = [s for s in tracer.spans
                       if s.attrs.get("outcome") == "unrecovered"]
        assert [s.name for s in unrecovered] == ["dead"]
        assert unrecovered[0].end == pytest.approx(2.0)

    def test_close_is_idempotent(self, env):
        plan = FaultPlan()
        plan.add("dead", "crash", target="node0", at=0.5)
        _cluster, metrics, injector = self._build(env, plan)
        injector.start()
        env.run(until=2.0)
        injector.close()
        injector.close()
        assert metrics.counter("faults.unrecovered").value == 1
        assert metrics.gauge("faults.active").value == 0

    def test_close_with_everything_recovered_is_a_no_op(self, env):
        plan = FaultPlan()
        plan.add("flap", "link_down", at=0.2, duration=0.1)
        _cluster, metrics, injector = self._build(env, plan)
        injector.start()
        env.run()
        injector.close()
        assert metrics.counter("faults.unrecovered").value == 0
        assert metrics.gauge("faults.active").value == 0


class TestGeneratePlan:
    NODES = ("node0", "node1", "node2")
    MODEL = FailureModel(node_mtbf=300.0, node_mttr=30.0,
                         link_mtbf=600.0, link_mttr=5.0,
                         degrade_mtbf=900.0, degrade_mttr=60.0,
                         disk_stall_mtbf=450.0, disk_stall_mttr=2.0,
                         burst_probability=0.5, burst_spread=10.0)

    def test_same_arguments_same_plan(self):
        first = generate_plan(self.MODEL, self.NODES, 3600.0, seed=42)
        second = generate_plan(self.MODEL, self.NODES, 3600.0, seed=42)
        assert first.to_dicts() == second.to_dicts()
        assert len(first) > 0

    def test_different_seed_different_plan(self):
        first = generate_plan(self.MODEL, self.NODES, 3600.0, seed=1)
        second = generate_plan(self.MODEL, self.NODES, 3600.0, seed=2)
        assert first.to_dicts() != second.to_dicts()

    def test_every_stream_is_represented(self):
        plan = generate_plan(self.MODEL, self.NODES, 7200.0, seed=7)
        kinds = {spec.kind for spec in plan}
        assert {"crash", "link_down", "disk_stall"} <= kinds
        assert kinds & {"latency", "bandwidth"}

    def test_zero_rate_disables_a_stream(self):
        model = FailureModel(node_mtbf=300.0, node_mttr=30.0,
                             link_mtbf=0.0, degrade_mtbf=0.0,
                             disk_stall_mtbf=0.0)
        plan = generate_plan(model, self.NODES, 3600.0, seed=7)
        assert {spec.kind for spec in plan} == {"crash"}

    def test_durations_respect_the_floor(self):
        plan = generate_plan(self.MODEL, self.NODES, 7200.0, seed=9)
        from repro.faults.generate import MIN_DURATION
        for spec in plan:
            assert spec.duration is None \
                or spec.duration >= MIN_DURATION

    def test_same_node_crash_windows_never_overlap(self):
        plan = generate_plan(self.MODEL, self.NODES, 7200.0, seed=5)
        by_node = {}
        for spec in plan:
            if spec.kind == "crash":
                by_node.setdefault(spec.target, []).append(
                    (spec.at, spec.duration))
        for windows in by_node.values():
            windows.sort()
            for (start_a, dur_a), (start_b, _dur_b) in zip(
                    windows, windows[1:]):
                assert start_a + dur_a <= start_b

    def test_max_faults_caps_and_keeps_the_earliest(self):
        import dataclasses
        capped_model = dataclasses.replace(self.MODEL, max_faults=10)
        capped = generate_plan(capped_model, self.NODES, 7200.0, seed=7)
        full = generate_plan(self.MODEL, self.NODES, 7200.0, seed=7)
        assert len(capped) == 10
        assert len(full) > 10
        assert max(spec.at for spec in capped) \
            <= min(sorted(spec.at for spec in full)[10:])

    def test_generated_plan_feeds_the_injector(self, env):
        plan = generate_plan(self.MODEL, self.NODES, 600.0, seed=3)
        cluster = Cluster(env)
        for name in self.NODES:
            cluster.add_node(name)
        metrics = MetricsRegistry()
        injector = FaultInjector(env, cluster, plan, metrics=metrics)
        injector.start()
        env.run(until=600.0)
        assert metrics.counter("faults.injected").value > 0
        injector.close()
        assert metrics.gauge("faults.active").value == 0

    @pytest.mark.parametrize("kwargs, message", [
        (dict(node_mtbf=-1.0), "must be >= 0"),
        (dict(burst_probability=1.5), "in \\[0, 1\\]"),
        (dict(degrade_factor=1.0), "must be > 1"),
        (dict(max_faults=0), "must be >= 1"),
    ])
    def test_model_validation(self, kwargs, message):
        model = FailureModel(**kwargs)
        with pytest.raises(ValueError, match=message):
            model.validate()

    def test_plan_arguments_validated(self):
        with pytest.raises(ValueError, match="at least one node"):
            generate_plan(self.MODEL, (), 100.0)
        with pytest.raises(ValueError, match="duplicate"):
            generate_plan(self.MODEL, ("a", "a"), 100.0)
        with pytest.raises(ValueError, match="horizon"):
            generate_plan(self.MODEL, self.NODES, 0.0)
