"""Tests for the CLI and the SQL renderer's explicit cases."""

import pytest

from repro.cli import COMMANDS, DESCRIPTIONS, main
from repro.engine.render import render, render_expression, render_literal
from repro.engine.sqlmini import (BinaryOp, ColumnRef, Literal, parse)
from repro.errors import SqlError


class TestRenderer:
    @pytest.mark.parametrize("sql", [
        "BEGIN",
        "COMMIT",
        "ROLLBACK",
        "SELECT * FROM item",
        "SELECT a, b FROM t WHERE x = 1 AND y >= 2 ORDER BY b DESC "
        "LIMIT 5",
        "INSERT INTO t (a, b) VALUES (1, 'x')",
        "UPDATE t SET a = (a + 1) WHERE k = 3",
        "DELETE FROM t WHERE k = 9",
        "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)",
        "CREATE INDEX idx ON t (v)",
        "ALTER TABLE t ADD COLUMN extra INT",
    ])
    def test_roundtrip_examples(self, sql):
        statement = parse(sql)
        assert parse(render(statement)) == statement

    def test_string_escaping(self):
        assert render_literal("it's") == "'it''s'"
        assert parse("SELECT a FROM t WHERE b = %s"
                     % render_literal("it's")).where[0].value == "it's"

    def test_null_literal(self):
        assert render_literal(None) == "NULL"

    def test_boolean_rejected(self):
        with pytest.raises(SqlError):
            render_literal(True)

    def test_unknown_literal_rejected(self):
        with pytest.raises(SqlError):
            render_literal(object())

    def test_expression_parenthesised(self):
        expression = BinaryOp("*", BinaryOp("+", ColumnRef("a"),
                                            Literal(2)), Literal(3))
        assert render_expression(expression) == "((a + 2) * 3)"


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in COMMANDS:
            assert name in output

    def test_descriptions_cover_commands(self):
        assert set(DESCRIPTIONS) == set(COMMANDS)

    def test_table2_command(self, capsys):
        assert main(["table2"]) == 0
        assert "CON-COM" in capsys.readouterr().out

    def test_table3_command(self, capsys):
        assert main(["table3", "--profile", "smoke"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_costmodel_command(self, capsys):
        assert main(["costmodel"]) == 0
        assert "C_madeus" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])

    def test_fig5_smoke(self, capsys):
        assert main(["fig5", "--profile", "smoke"]) == 0
        assert "Figure 5" in capsys.readouterr().out
