"""Snapshot-isolation semantics end-to-end through sessions.

These tests exercise the paper's Section 2.3 behaviours: snapshot
visibility, repeatable reads, first-updater-wins (both the waiting and
the immediate-abort paths), read-own-writes, and lock hand-off on abort.
"""

import pytest

from repro.engine import DbmsInstance, Session
from repro.sim import Environment

from _helpers import drive, drive_all


@pytest.fixture
def instance(env):
    inst = DbmsInstance(env, "n0")
    inst.create_tenant("T")

    def setup(env):
        s = Session(inst, "T")
        result = yield from s.execute(
            "CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        assert result.ok
        yield from s.execute("BEGIN")
        for key in range(5):
            result = yield from s.execute(
                "INSERT INTO kv (k, v) VALUES (%d, %d)" % (key, key * 10))
            assert result.ok, result.error
        result = yield from s.execute("COMMIT")
        assert result.ok
    drive(env, setup(env))
    return inst


def _read_v(session, key):
    result = yield from session.execute(
        "SELECT v FROM kv WHERE k = %d" % key)
    assert result.ok, result.error
    return result.rows[0]["v"] if result.rows else None


class TestSnapshotVisibility:
    def test_snapshot_taken_at_first_operation(self, env, instance):
        """A transaction's snapshot excludes commits after its first
        read, even if BEGIN preceded them."""
        reader = Session(instance, "T")
        writer = Session(instance, "T")

        def reader_proc(env):
            yield from reader.execute("BEGIN")
            yield env.timeout(5)  # writer commits in this window
            first = yield from _read_v(reader, 0)
            yield env.timeout(5)
            second = yield from _read_v(reader, 0)
            yield from reader.execute("COMMIT")
            return (first, second)

        def writer_proc(env):
            yield env.timeout(1)
            yield from writer.execute("BEGIN")
            yield from _read_v(writer, 0)
            result = yield from writer.execute(
                "UPDATE kv SET v = 111 WHERE k = 0")
            assert result.ok
            yield from writer.execute("COMMIT")
        values = drive_all(env, reader_proc(env), writer_proc(env))[0]
        # snapshot was created after the writer's commit -> sees 111
        assert values == (111, 111)

    def test_no_dirty_reads(self, env, instance):
        """Uncommitted writes are invisible to other transactions."""
        reader = Session(instance, "T")
        writer = Session(instance, "T")

        def writer_proc(env):
            yield from writer.execute("BEGIN")
            yield from _read_v(writer, 1)
            yield from writer.execute("UPDATE kv SET v = 999 WHERE k = 1")
            yield env.timeout(10)  # hold the write uncommitted
            yield from writer.execute("ROLLBACK")

        def reader_proc(env):
            yield env.timeout(2)
            yield from reader.execute("BEGIN")
            value = yield from _read_v(reader, 1)
            yield from reader.execute("COMMIT")
            return value
        values = drive_all(env, writer_proc(env), reader_proc(env))
        assert values[1] == 10

    def test_repeatable_read(self, env, instance):
        """Reads within one transaction agree despite later commits."""
        reader = Session(instance, "T")
        writer = Session(instance, "T")

        def reader_proc(env):
            yield from reader.execute("BEGIN")
            first = yield from _read_v(reader, 2)
            yield env.timeout(10)
            second = yield from _read_v(reader, 2)
            yield from reader.execute("COMMIT")
            return (first, second)

        def writer_proc(env):
            yield env.timeout(3)
            yield from writer.execute("BEGIN")
            yield from _read_v(writer, 2)
            yield from writer.execute("UPDATE kv SET v = 777 WHERE k = 2")
            yield from writer.execute("COMMIT")
        values = drive_all(env, reader_proc(env), writer_proc(env))[0]
        assert values == (20, 20)

    def test_read_own_writes(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            yield from session.execute("BEGIN")
            yield from _read_v(session, 3)
            yield from session.execute("UPDATE kv SET v = v + 5 WHERE k = 3")
            value = yield from _read_v(session, 3)
            yield from session.execute("COMMIT")
            return value
        assert drive(env, proc(env)) == 35

    def test_insert_visible_after_commit_only(self, env, instance):
        writer = Session(instance, "T")
        reader = Session(instance, "T")

        def writer_proc(env):
            yield from writer.execute("BEGIN")
            yield from _read_v(writer, 0)
            yield from writer.execute("INSERT INTO kv (k, v) VALUES (50, 1)")
            yield env.timeout(5)
            yield from writer.execute("COMMIT")

        def early_reader(env):
            yield env.timeout(2)
            value = yield from _read_v(reader, 50)
            return value

        def late_reader(env):
            yield env.timeout(10)
            value = yield from _read_v(reader, 50)
            return value
        values = drive_all(env, writer_proc(env), early_reader(env),
                           late_reader(env))
        assert values[1] is None
        assert values[2] == 1

    def test_delete_hides_row(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            yield from session.execute("BEGIN")
            yield from _read_v(session, 4)
            result = yield from session.execute("DELETE FROM kv WHERE k = 4")
            assert result.affected == 1
            yield from session.execute("COMMIT")
            value = yield from _read_v(session, 4)
            return value
        assert drive(env, proc(env)) is None


class TestFirstUpdaterWins:
    def test_waiter_aborts_when_holder_commits(self, env, instance):
        t1 = Session(instance, "T")
        t2 = Session(instance, "T")
        log = []

        def holder(env):
            yield from t1.execute("BEGIN")
            yield from _read_v(t1, 0)
            yield from t1.execute("UPDATE kv SET v = v + 1 WHERE k = 0")
            yield env.timeout(5)
            result = yield from t1.execute("COMMIT")
            log.append(("t1", result.ok))

        def waiter(env):
            yield env.timeout(1)
            yield from t2.execute("BEGIN")
            yield from _read_v(t2, 0)
            result = yield from t2.execute(
                "UPDATE kv SET v = v + 1 WHERE k = 0")
            log.append(("t2", result.ok, result.error))
        drive_all(env, holder(env), waiter(env))
        assert ("t1", True) in log
        t2_entry = [e for e in log if e[0] == "t2"][0]
        assert t2_entry[1] is False
        assert "first-updater-wins" in t2_entry[2]

    def test_waiter_proceeds_when_holder_aborts(self, env, instance):
        t1 = Session(instance, "T")
        t2 = Session(instance, "T")
        log = []

        def holder(env):
            yield from t1.execute("BEGIN")
            yield from _read_v(t1, 1)
            yield from t1.execute("UPDATE kv SET v = 100 WHERE k = 1")
            yield env.timeout(5)
            yield from t1.execute("ROLLBACK")

        def waiter(env):
            yield env.timeout(1)
            yield from t2.execute("BEGIN")
            yield from _read_v(t2, 1)
            result = yield from t2.execute(
                "UPDATE kv SET v = 200 WHERE k = 1")
            log.append(("t2-update", result.ok, env.now))
            result = yield from t2.execute("COMMIT")
            log.append(("t2-commit", result.ok))
        drive_all(env, holder(env), waiter(env))
        update_entry = [e for e in log if e[0] == "t2-update"][0]
        assert update_entry[1] is True
        assert update_entry[2] >= 5  # waited for the holder's abort
        assert ("t2-commit", True) in log

    def test_immediate_abort_on_stale_snapshot(self, env, instance):
        """If a newer committed version postdates the snapshot, the
        update aborts immediately — no waiting for its own commit."""
        t1 = Session(instance, "T")
        t2 = Session(instance, "T")

        def t2_proc(env):
            yield from t2.execute("BEGIN")
            yield from _read_v(t2, 2)  # snapshot taken here
            yield env.timeout(5)       # t1 commits an update meanwhile
            result = yield from t2.execute(
                "UPDATE kv SET v = 1 WHERE k = 2")
            return (result.ok, result.error, env.now)

        def t1_proc(env):
            yield env.timeout(1)
            yield from t1.execute("BEGIN")
            yield from _read_v(t1, 2)
            yield from t1.execute("UPDATE kv SET v = 2 WHERE k = 2")
            yield from t1.execute("COMMIT")
        values = drive_all(env, t2_proc(env), t1_proc(env))[0]
        ok, error, when = values
        assert ok is False
        assert "first-updater-wins" in error
        # aborted at the write attempt (t=5), not after a lock wait
        assert when == pytest.approx(5, abs=0.5)

    def test_same_txn_rewrite_is_not_a_conflict(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            yield from session.execute("BEGIN")
            yield from _read_v(session, 3)
            r1 = yield from session.execute(
                "UPDATE kv SET v = v + 1 WHERE k = 3")
            r2 = yield from session.execute(
                "UPDATE kv SET v = v + 1 WHERE k = 3")
            commit = yield from session.execute("COMMIT")
            return (r1.ok, r2.ok, commit.ok)
        assert drive(env, proc(env)) == (True, True, True)

    def test_intra_ww_last_write_wins_at_commit(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            yield from session.execute("BEGIN")
            yield from _read_v(session, 3)
            yield from session.execute("UPDATE kv SET v = 1 WHERE k = 3")
            yield from session.execute("UPDATE kv SET v = 2 WHERE k = 3")
            yield from session.execute("COMMIT")
            value = yield from _read_v(session, 3)
            return value
        assert drive(env, proc(env)) == 2

    def test_serial_writers_never_conflict(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            for _round in range(3):
                yield from session.execute("BEGIN")
                yield from _read_v(session, 0)
                result = yield from session.execute(
                    "UPDATE kv SET v = v + 1 WHERE k = 0")
                assert result.ok
                result = yield from session.execute("COMMIT")
                assert result.ok
            value = yield from _read_v(session, 0)
            return value
        assert drive(env, proc(env)) == 3

    def test_concurrent_disjoint_writers_both_commit(self, env, instance):
        t1 = Session(instance, "T")
        t2 = Session(instance, "T")

        def writer(session, key, env):
            yield from session.execute("BEGIN")
            yield from _read_v(session, key)
            result = yield from session.execute(
                "UPDATE kv SET v = v + 1 WHERE k = %d" % key)
            assert result.ok
            result = yield from session.execute("COMMIT")
            return result.ok
        results = drive_all(env, writer(t1, 0, env), writer(t2, 1, env))
        assert results == [True, True]


class TestSessionLifecycle:
    def test_commit_without_begin_errors(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            result = yield from session.execute("COMMIT")
            return result
        result = drive(env, proc(env))
        assert not result.ok

    def test_nested_begin_errors(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            yield from session.execute("BEGIN")
            result = yield from session.execute("BEGIN")
            return result
        assert not drive(env, proc(env)).ok

    def test_rollback_without_txn_is_ok(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            result = yield from session.execute("ROLLBACK")
            return result
        assert drive(env, proc(env)).ok

    def test_readonly_commit_has_no_csn(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            yield from session.execute("BEGIN")
            yield from _read_v(session, 0)
            result = yield from session.execute("COMMIT")
            return result.commit_csn
        assert drive(env, proc(env)) is None

    def test_update_commit_has_csn(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            yield from session.execute("BEGIN")
            yield from _read_v(session, 0)
            yield from session.execute("UPDATE kv SET v = v + 1 WHERE k = 0")
            result = yield from session.execute("COMMIT")
            return result.commit_csn
        assert drive(env, proc(env)) is not None

    def test_duplicate_insert_aborts_txn(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            yield from session.execute("BEGIN")
            yield from _read_v(session, 0)
            result = yield from session.execute(
                "INSERT INTO kv (k, v) VALUES (0, 1)")
            return (result.ok, session.in_transaction)
        ok, in_txn = drive(env, proc(env))
        assert not ok
        assert not in_txn

    def test_reset_aborts_open_txn(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            yield from session.execute("BEGIN")
            yield from _read_v(session, 0)
            yield from session.execute("UPDATE kv SET v = 1 WHERE k = 0")
            session.reset()
            return session.in_transaction
        assert drive(env, proc(env)) is False
        assert instance.aborts == 1

    def test_unknown_table_is_error_result(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            result = yield from session.execute("SELECT v FROM ghost")
            return result
        result = drive(env, proc(env))
        assert not result.ok
        assert "ghost" in result.error
