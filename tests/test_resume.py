"""Restart-and-resume migrations: the per-migration durable journal.

A resumable migration records its frozen chunk plan and per-node
progress in a :class:`~repro.core.middleware.MigrationJournal`; a
source crash *suspends* the migration (Section 4.2's abort, minus the
forgetting) and ``Middleware.resume_migration`` re-enters it after the
master's WAL-replay restart — skipping every chunk the destination
already installed instead of re-dumping from scratch.  These tests
cover the journal lifecycle, the parked-state semantics, the
strictly-fewer-work acceptance bound versus a fresh re-dump, and the
scheduler's ``resume`` retry policy end to end.
"""

import pytest

from repro.core import MigrationOptions
from repro.core.middleware import (
    JOURNAL_ABANDONED,
    JOURNAL_ACTIVE,
    JOURNAL_COMPLETED,
    JOURNAL_SUSPENDED,
)
from repro.core.scheduler import MigrationScheduler, ScheduleOptions
from repro.errors import MigrationError, SourceCrashed

from test_fault_tolerance import RATES, build, seed_tenant

#: 1 MB chunks over the ~10 MB tenant give the journal a fine-grained
#: chunk plan, so a mid-dump crash parks with real progress recorded.
CHUNK_MB = 1.0


def _options(**kwargs):
    kwargs.setdefault("rates", RATES)
    kwargs.setdefault("chunk_mb", CHUNK_MB)
    return MigrationOptions(**kwargs)


def _launch_migration(env, middleware, options=None):
    holder = {}

    def main(env):
        try:
            holder["report"] = yield from middleware.migrate(
                "A", "node1", options or _options())
        except SourceCrashed as exc:
            holder["error"] = exc
    env.process(main(env))
    return holder


def _launch_resume(env, middleware, options=None):
    holder = {}

    def main(env):
        try:
            holder["report"] = yield from middleware.resume_migration(
                "A", options or _options())
        except SourceCrashed as exc:
            holder["error"] = exc
    env.process(main(env))
    return holder


def _restart(env, instance):
    process = env.process(instance.restart())
    env.run()
    assert process.ok


def _suspend_mid_dump(env, cluster, middleware, crash_after=2.5,
                      **tenant_kwargs):
    """Start a resumable migration and crash the source mid-snapshot."""
    tenant_kwargs.setdefault("overhead_mb", 10.0)
    workload = seed_tenant(env, cluster, middleware, **tenant_kwargs)
    holder = _launch_migration(env, middleware)
    env.run(until=env.now + crash_after)
    assert "report" not in holder, "crash_after landed past completion"
    cluster.node("node0").instance.crash()
    env.run()
    assert "error" in holder
    return workload, holder


def _assert_no_lost_commits(cluster, middleware, workload):
    owner = middleware.route("A")
    table = cluster.node(owner).instance.tenant("A").table("kv")
    for key, increments in workload.committed_increments.items():
        assert table.chain(key).latest()["v"] == increments, \
            "key %d lost increments on owner %s" % (key, owner)


class TestSuspend:
    def test_source_crash_parks_instead_of_aborting(self, env):
        cluster, middleware = build(env, nodes=2, resumable=True)
        _workload, holder = _suspend_mid_dump(env, cluster, middleware)
        assert holder["error"].node == "node0"
        journal = middleware.migration_journal("A")
        assert journal is not None
        assert journal.state == JOURNAL_SUSPENDED
        assert journal.suspend_phase in ("dump", "restore")
        assert journal.total_chunks >= 10
        assert journal.manager is None
        report = middleware.reports[0]
        assert report.outcome == "suspended"
        assert report.owner == "node0"
        # The tenant keeps serving from the source while parked ...
        state = middleware.tenant_state("A")
        assert middleware.route("A") == "node0"
        assert middleware.owners("A") == ["node0"]
        assert state.gate.is_open
        # ... but the migration is parked, not forgotten.
        assert state.migrating
        assert middleware.metrics.counter(
            "migration.suspended").value == 1
        assert any(event.name == "migration.suspended"
                   for event in middleware.tracer.events)

    def test_fresh_migrate_rejected_while_parked(self, env):
        cluster, middleware = build(env, nodes=2, resumable=True)
        _suspend_mid_dump(env, cluster, middleware)
        _restart(env, cluster.node("node0").instance)

        def again(env):
            with pytest.raises(MigrationError):
                yield from middleware.migrate("A", "node1", _options())
        process = env.process(again(env))
        env.run()
        assert process.ok

    def test_non_resumable_migration_still_aborts(self, env):
        cluster, middleware = build(env, nodes=2)
        _workload, _holder = _suspend_mid_dump(env, cluster, middleware)
        assert middleware.migration_journal("A") is None
        assert middleware.reports[0].outcome == "aborted"
        assert not middleware.tenant_state("A").migrating


class TestResume:
    def test_resume_completes_and_skips_restored_chunks(self, env):
        cluster, middleware = build(env, nodes=2, resumable=True)
        workload, _holder = _suspend_mid_dump(env, cluster, middleware)
        journal = middleware.migration_journal("A")
        restored_at_park = journal.chunks_restored.get("node1", 0)
        _restart(env, cluster.node("node0").instance)
        holder = _launch_resume(env, middleware)
        env.run()
        report = holder["report"]
        assert report.outcome == "ok"
        assert report.resumed is True
        assert report.consistent is True
        assert report.owner == "node1"
        assert middleware.route("A") == "node1"
        assert report.chunks_skipped == restored_at_park
        assert journal.state == JOURNAL_COMPLETED
        assert journal.resumes == 1
        _assert_no_lost_commits(cluster, middleware, workload)
        assert middleware.metrics.counter(
            "migration.resumed").value == 1

    def test_chunk_log_covers_plan_without_duplicates(self, env):
        cluster, middleware = build(env, nodes=2, resumable=True)
        _suspend_mid_dump(env, cluster, middleware)
        _restart(env, cluster.node("node0").instance)
        holder = _launch_resume(env, middleware)
        env.run()
        assert holder["report"].outcome == "ok"
        journal = middleware.migration_journal("A")
        log = journal.chunk_log["node1"]
        # With a healthy network no chunk may ship twice, and together
        # the park-time and resume-time installs cover the whole plan.
        assert len(log) == len(set(log))
        assert sorted(log) == list(range(journal.total_chunks))

    def test_resume_replays_strictly_less_than_fresh_redump(self, env):
        """The acceptance bound: resumed catch-up ships strictly fewer
        chunks — and strictly fewer total records (chunks + WAL commits
        replayed on the destination) — than re-running the migration
        from scratch on the same scenario: a 40-chunk tenant crashed
        late in restore under a light steady workload."""

        def scenario(env, resumable):
            cluster, middleware = build(env, nodes=2,
                                        resumable=resumable)
            workload = seed_tenant(env, cluster, middleware,
                                   overhead_mb=40.0, clients=2,
                                   txns=40, think_time=2.0)
            holder = _launch_migration(env, middleware)
            env.run(until=env.now + 18.0)
            assert "report" not in holder
            cluster.node("node0").instance.crash()
            env.run()
            assert "error" in holder
            _restart(env, cluster.node("node0").instance)
            return cluster, middleware, workload

        cluster, middleware, workload = scenario(env, True)
        holder = _launch_resume(env, middleware)
        env.run()
        resumed = holder["report"]
        assert resumed.outcome == "ok"
        _assert_no_lost_commits(cluster, middleware, workload)

        # Control: the identical scenario without a journal — the crash
        # aborts, and recovery is a full re-dump.
        env2 = type(env)()
        cluster2, middleware2, workload2 = scenario(env2, False)
        dest = cluster2.node("node1").instance
        if dest.has_tenant("A"):
            # What the scheduler's retry does before re-migrating.
            dest.drop_tenant("A")
        holder2 = _launch_migration(env2, middleware2)
        env2.run()
        fresh = holder2["report"]
        assert fresh.outcome == "ok"
        _assert_no_lost_commits(cluster2, middleware2, workload2)

        assert resumed.chunks_skipped > 0
        assert fresh.chunks_skipped == 0
        assert resumed.chunks < fresh.chunks
        resumed_work = resumed.chunks + resumed.slave_commit_count
        fresh_work = fresh.chunks + fresh.slave_commit_count
        assert resumed_work < fresh_work

    def test_resume_after_catchup_began_skips_snapshot(self, env):
        cluster, middleware = build(env, nodes=2, resumable=True)
        workload = seed_tenant(env, cluster, middleware,
                               overhead_mb=10.0)
        holder = _launch_migration(env, middleware)
        state = middleware.tenant_state("A")
        while state.propagator is None and "report" not in holder:
            env.run(until=env.now + 0.05)
        assert "report" not in holder
        cluster.node("node0").instance.crash()
        env.run()
        assert "error" in holder
        journal = middleware.migration_journal("A")
        assert journal.state == JOURNAL_SUSPENDED
        assert journal.suspend_phase == "catch-up"
        # The engine survives the park: it is the middleware's own
        # process and keeps draining toward the destination.
        assert state.propagator is not None
        _restart(env, cluster.node("node0").instance)
        resume_holder = _launch_resume(env, middleware)
        env.run()
        report = resume_holder["report"]
        assert report.outcome == "ok"
        assert report.resumed is True
        assert report.consistent is True
        # The whole snapshot was already on the destination: nothing
        # re-shipped, every chunk skipped.
        assert report.chunks == 0
        assert report.chunks_skipped == journal.total_chunks
        _assert_no_lost_commits(cluster, middleware, workload)

    def test_resume_while_source_down_raises(self, env):
        cluster, middleware = build(env, nodes=2, resumable=True)
        _suspend_mid_dump(env, cluster, middleware)
        holder = _launch_resume(env, middleware)
        env.run()
        assert "error" in holder
        assert holder["error"].node == "node0"
        assert middleware.migration_journal("A").state \
            == JOURNAL_SUSPENDED

    def test_resume_without_journal_rejected(self, env):
        cluster, middleware = build(env, nodes=2, resumable=True)
        seed_tenant(env, cluster, middleware, overhead_mb=1.0)

        def main(env):
            with pytest.raises(MigrationError,
                               match="no migration journal"):
                yield from middleware.resume_migration("A")
        process = env.process(main(env))
        env.run()
        assert process.ok

    def test_resume_completed_journal_rejected(self, env):
        cluster, middleware = build(env, nodes=2, resumable=True)
        seed_tenant(env, cluster, middleware, overhead_mb=1.0)
        holder = _launch_migration(env, middleware)
        env.run()
        assert holder["report"].outcome == "ok"
        journal = middleware.migration_journal("A")
        assert journal.state == JOURNAL_COMPLETED

        def main(env):
            with pytest.raises(MigrationError):
                yield from middleware.resume_migration("A")
        process = env.process(main(env))
        env.run()
        assert process.ok

    def test_destination_losing_copy_after_catchup_abandons(self, env):
        cluster, middleware = build(env, nodes=2, resumable=True)
        seed_tenant(env, cluster, middleware, overhead_mb=10.0)
        holder = _launch_migration(env, middleware)
        state = middleware.tenant_state("A")
        while state.propagator is None and "report" not in holder:
            env.run(until=env.now + 0.05)
        assert "report" not in holder
        cluster.node("node0").instance.crash()
        env.run()
        assert "error" in holder
        _restart(env, cluster.node("node0").instance)
        # Simulate the destination losing its copy while parked: the
        # replayed syncsets lived only there, so the journal must be
        # abandoned rather than silently re-shipped.
        cluster.node("node1").instance.drop_tenant("A")

        def main(env):
            with pytest.raises(MigrationError, match="lost its copy"):
                yield from middleware.resume_migration("A")
        process = env.process(main(env))
        env.run()
        assert process.ok
        journal = middleware.migration_journal("A")
        assert journal.state == JOURNAL_ABANDONED
        assert not state.migrating
        # Abandoned means re-migratable: a fresh migrate must work.
        fresh = _launch_migration(env, middleware)
        env.run()
        assert fresh["report"].outcome == "ok"


class TestSchedulerResume:
    def test_resume_policy_rides_out_a_source_crash(self, env):
        cluster, middleware = build(env, nodes=3, resumable=True)
        seed_tenant(env, cluster, middleware, overhead_mb=10.0)
        source = cluster.node("node0").instance

        def chaos(env):
            yield env.timeout(2.5)
            source.crash()
            yield env.timeout(3.0)
            yield from source.restart()
        env.process(chaos(env))
        scheduler = MigrationScheduler(middleware, ScheduleOptions(
            resume=True, retry_limit=3,
            migration=_options()))
        scheduler.submit("A", "node1", alternates=("node2",))
        process = scheduler.start()
        env.run()
        report = process.value
        job = report.job("A")
        assert job.outcome == "ok"
        assert job.resumes >= 1
        assert job.attempts >= 2
        assert job.report.resumed is True
        assert middleware.route("A") == "node1"
        assert middleware.metrics.counter(
            "scheduler.resumes").value >= 1
        assert any(event.name == "schedule.resume"
                   for event in middleware.tracer.events)
        journal = middleware.migration_journal("A")
        assert journal.state == JOURNAL_COMPLETED

    def test_without_resume_policy_job_stays_suspended(self, env):
        cluster, middleware = build(env, nodes=2, resumable=True)
        seed_tenant(env, cluster, middleware, overhead_mb=10.0)
        source = cluster.node("node0").instance

        def chaos(env):
            yield env.timeout(2.5)
            source.crash()
            yield env.timeout(3.0)
            yield from source.restart()
        env.process(chaos(env))
        scheduler = MigrationScheduler(middleware, ScheduleOptions(
            retry_limit=3, migration=_options()))
        scheduler.submit("A", "node1")
        process = scheduler.start()
        env.run()
        job = process.value.job("A")
        assert job.outcome == "suspended"
        assert job.resumes == 0
        assert middleware.migration_journal("A").state \
            == JOURNAL_SUSPENDED
        assert middleware.route("A") == "node0"


class TestJournalLifecycle:
    def test_completed_migration_closes_its_journal(self, env):
        cluster, middleware = build(env, nodes=2, resumable=True)
        seed_tenant(env, cluster, middleware, overhead_mb=2.0)
        holder = _launch_migration(env, middleware)
        env.run()
        assert holder["report"].outcome == "ok"
        journal = middleware.migration_journal("A")
        assert journal.state == JOURNAL_COMPLETED
        assert journal.phase == "done"
        assert journal.manager is None

    def test_journal_freezes_the_chunk_plan(self, env):
        cluster, middleware = build(env, nodes=2, resumable=True)
        _suspend_mid_dump(env, cluster, middleware)
        journal = middleware.migration_journal("A")
        frozen = (journal.size_mb, journal.total_chunks,
                  journal.snapshot_csn, journal.mts)
        _restart(env, cluster.node("node0").instance)
        holder = _launch_resume(env, middleware)
        env.run()
        assert holder["report"].outcome == "ok"
        # The resumed slices came from the same frozen plan: nothing
        # about the snapshot identity moved across the restart.
        assert (journal.size_mb, journal.total_chunks,
                journal.snapshot_csn, journal.mts) == frozen

    def test_unknown_tenant_journal_is_none(self, env):
        _cluster, middleware = build(env, nodes=2)
        assert middleware.migration_journal("nope") is None
        assert JOURNAL_ACTIVE != JOURNAL_SUSPENDED
