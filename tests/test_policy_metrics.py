"""Tests for propagation policies (Table 2), report formatting, and the
cost model of Section 4.5.2."""

import math

import pytest

from repro.core import (ALL_POLICIES, B_ALL, B_CON, B_MIN, MADEUS,
                        feature_matrix, policy_by_name)
from repro.experiments.costmodel import (CostParameters, cost_all,
                                         cost_gap, cost_madeus,
                                         gap_identity_holds,
                                         gap_is_monotone_in_load,
                                         parameters_from_run)
from repro.metrics.report import (format_series, format_table,
                                  shape_note, sparkline)


class TestPolicies:
    def test_table2_matrix(self):
        """Table 2, exactly."""
        matrix = feature_matrix()
        assert matrix["B-ALL"] == {"MIN": False, "CON-FW": False,
                                   "CON-COM": False}
        assert matrix["B-MIN"] == {"MIN": True, "CON-FW": False,
                                   "CON-COM": False}
        assert matrix["B-CON"] == {"MIN": True, "CON-FW": True,
                                   "CON-COM": False}
        assert matrix["Madeus"] == {"MIN": True, "CON-FW": True,
                                    "CON-COM": True}

    def test_feature_ordering_is_cumulative(self):
        """Each middleware adds exactly one feature over the previous."""
        counts = [sum(feature_matrix()[p.name].values())
                  for p in ALL_POLICIES]
        assert counts == [0, 1, 2, 3]

    def test_policy_by_name(self):
        assert policy_by_name("madeus") is MADEUS
        assert policy_by_name("B-con") is B_CON
        with pytest.raises(ValueError):
            policy_by_name("nope")

    def test_only_bcon_pays_commit_mutex(self):
        assert B_CON.commit_mutex_penalty > 0
        assert MADEUS.commit_mutex_penalty == 0
        assert B_ALL.commit_mutex_penalty == 0
        assert B_MIN.commit_mutex_penalty == 0

    def test_with_penalty_copies(self):
        tweaked = B_CON.with_penalty(0.5)
        assert tweaked.commit_mutex_penalty == 0.5
        assert B_CON.commit_mutex_penalty != 0.5
        assert tweaked.name == "B-CON"


class TestCostModel:
    def _params(self, **overrides):
        defaults = dict(read_cost=0.002, write_cost=0.003,
                        commit_cost=0.004, group_commit_cost=0.001,
                        reads_per_txn=3.0, writes_per_txn=2.0,
                        total_txns=1000, group_commits=600)
        defaults.update(overrides)
        return CostParameters(**defaults)

    def test_equation4_is_eq3_minus_eq2(self):
        assert gap_identity_holds(self._params())

    def test_gap_nonnegative(self):
        """The paper's claim: C_madeus never exceeds C_ALL."""
        assert cost_gap(self._params()) >= 0
        assert cost_all(self._params()) >= cost_madeus(self._params())

    def test_gap_zero_when_no_extra_reads_or_groups(self):
        params = self._params(reads_per_txn=1.0, group_commits=0)
        assert cost_gap(params) == pytest.approx(0.0)

    def test_gap_monotone_in_load(self):
        assert gap_is_monotone_in_load(self._params())

    def test_validation_rejects_blind_write_world(self):
        with pytest.raises(ValueError, match="N_r"):
            cost_all(self._params(reads_per_txn=0.5))

    def test_validation_rejects_expensive_group_commit(self):
        with pytest.raises(ValueError, match="C'_c"):
            cost_madeus(self._params(group_commit_cost=0.005))

    def test_validation_rejects_excess_groups(self):
        with pytest.raises(ValueError):
            cost_madeus(self._params(group_commits=2000))

    def test_parameters_from_run_counts_groups(self):
        params = parameters_from_run(total_txns=100, reads_per_txn=2.0,
                                     writes_per_txn=1.5, flush_count=40,
                                     fsync_latency=0.004)
        assert params.group_commits == 60
        assert gap_identity_holds(params)


class TestReportFormatting:
    def test_format_table_aligns_and_rules(self):
        text = format_table(["a", "long_header"], [[1, 2.5], [33, None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "long_header" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "N/A" in lines[3]

    def test_format_table_nan_renders_na(self):
        text = format_table(["x"], [[math.nan]])
        assert "N/A" in text

    def test_format_table_wrong_arity_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_table_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_format_series_downsamples(self):
        points = [(float(i), float(i)) for i in range(1000)]
        text = format_series("s", points, max_points=10)
        assert len(text.splitlines()) <= 110

    def test_sparkline_shape(self):
        flat = sparkline([(0, 1.0), (1, 1.0), (2, 1.0)])
        assert len(set(flat)) == 1
        spike = sparkline([(0, 0.0), (1, 10.0), (2, 0.0)])
        assert len(set(spike)) > 1

    def test_sparkline_empty(self):
        assert sparkline([]) == "(empty)"

    def test_shape_note_ratio(self):
        note = shape_note(2.0, 1.0, "thing")
        assert "x2.00" in note

    def test_shape_note_zero_paper(self):
        assert "paper: 0" in shape_note(2.0, 0.0, "thing")
