"""Kernel tests: environment, processes, timeouts, composite events."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt, Timeout
from repro.sim.core import run_processes

from _helpers import drive


class TestEnvironmentBasics:
    def test_initial_time_is_zero(self):
        assert Environment().now == 0.0

    def test_initial_time_configurable(self):
        assert Environment(initial_time=42.5).now == 42.5

    def test_run_empty_queue_returns(self):
        env = Environment()
        env.run()
        assert env.now == 0.0

    def test_peek_empty_is_infinite(self):
        assert Environment().peek() == float("inf")

    def test_step_on_empty_queue_raises(self):
        with pytest.raises(RuntimeError):
            Environment().step()

    def test_run_until_in_past_raises(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(ValueError):
            env.run(until=5.0)


class TestTimeout:
    def test_timeout_advances_clock(self, env):
        def proc(env):
            yield env.timeout(3.5)
            return env.now
        assert drive(env, proc(env)) == 3.5

    def test_timeout_value_passed_through(self, env):
        def proc(env):
            value = yield env.timeout(1, value="hello")
            return value
        assert drive(env, proc(env)) == "hello"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            Timeout(env, -1)

    def test_zero_delay_allowed(self, env):
        def proc(env):
            yield env.timeout(0)
            return env.now
        assert drive(env, proc(env)) == 0.0

    def test_timeouts_fire_in_order(self, env):
        order = []

        def waiter(env, delay, tag):
            yield env.timeout(delay)
            order.append(tag)
        env.process(waiter(env, 3, "c"))
        env.process(waiter(env, 1, "a"))
        env.process(waiter(env, 2, "b"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo_tiebreak(self, env):
        order = []

        def waiter(env, tag):
            yield env.timeout(5)
            order.append(tag)
        for tag in ("x", "y", "z"):
            env.process(waiter(env, tag))
        env.run()
        assert order == ["x", "y", "z"]


class TestRunUntil:
    def test_run_until_stops_clock(self, env):
        def proc(env):
            yield env.timeout(100)
        env.process(proc(env))
        env.run(until=30)
        assert env.now == 30

    def test_run_can_resume_after_until(self, env):
        done = []

        def proc(env):
            yield env.timeout(10)
            done.append(env.now)
        env.process(proc(env))
        env.run(until=5)
        assert not done
        env.run(until=20)
        assert done == [10]


class TestProcess:
    def test_return_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return 99
        assert drive(env, proc(env)) == 99

    def test_process_is_event_waitable(self, env):
        def child(env):
            yield env.timeout(4)
            return "child-result"

        def parent(env):
            result = yield env.process(child(env))
            return (env.now, result)
        assert drive(env, parent(env)) == (4, "child-result")

    def test_yielding_non_event_raises(self, env):
        def bad(env):
            yield 42

        def parent(env):
            try:
                yield env.process(bad(env))
            except TypeError as exc:
                return str(exc)
        message = drive(env, parent(env))
        assert "non-event" in message

    def test_exception_propagates_to_waiter(self, env):
        def failing(env):
            yield env.timeout(1)
            raise ValueError("boom")

        def parent(env):
            try:
                yield env.process(failing(env))
            except ValueError as exc:
                return str(exc)
        assert drive(env, parent(env)) == "boom"

    def test_unwaited_crash_surfaces(self, env):
        def failing(env):
            yield env.timeout(1)
            raise ValueError("unhandled")
        env.process(failing(env))
        with pytest.raises(ValueError, match="unhandled"):
            env.run()

    def test_is_alive_lifecycle(self, env):
        def proc(env):
            yield env.timeout(5)
        process = env.process(proc(env))
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_interrupt_wakes_process(self, env):
        def sleeper(env):
            try:
                yield env.timeout(100)
                return "slept"
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, env.now)

        def interrupter(env, victim):
            yield env.timeout(2)
            victim.interrupt(cause="wake up")
        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert victim.value == ("interrupted", "wake up", 2)

    def test_interrupt_dead_process_raises(self, env):
        def quick(env):
            yield env.timeout(1)
        process = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_run_processes_helper(self):
        seen = []

        def proc(env_ref=[]):
            # environment injected through closure trick is awkward; use
            # a timeout-free generator that finishes immediately
            return
            yield
        env = run_processes(proc())
        assert env.now == 0.0
        del seen


class TestEvents:
    def test_event_succeed_delivers_value(self, env):
        event = env.event()

        def waiter(env):
            value = yield event
            return value

        def firer(env):
            yield env.timeout(1)
            event.succeed("payload")
        process = env.process(waiter(env))
        env.process(firer(env))
        env.run()
        assert process.value == "payload"

    def test_event_fail_raises_in_waiter(self, env):
        event = env.event()

        def waiter(env):
            try:
                yield event
            except RuntimeError as exc:
                return str(exc)

        def firer(env):
            yield env.timeout(1)
            event.fail(RuntimeError("failed-event"))
        process = env.process(waiter(env))
        env.process(firer(env))
        env.run()
        assert process.value == "failed-event"

    def test_double_trigger_raises(self, env):
        event = env.event()
        event.succeed(1)
        with pytest.raises(RuntimeError):
            event.succeed(2)

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_value_of_untriggered_raises(self, env):
        with pytest.raises(RuntimeError):
            env.event().value


class TestConditions:
    def test_all_of_waits_for_every_event(self, env):
        def proc(env):
            values = yield env.all_of([env.timeout(1, value="a"),
                                       env.timeout(3, value="b"),
                                       env.timeout(2, value="c")])
            return (env.now, values)
        now, values = drive(env, proc(env))
        assert now == 3
        assert values == ["a", "b", "c"]

    def test_any_of_fires_on_first(self, env):
        def proc(env):
            slow = env.timeout(10, value="slow")
            fast = env.timeout(2, value="fast")
            winner = yield env.any_of([slow, fast])
            return (env.now, winner.value)
        assert drive(env, proc(env)) == (2, "fast")

    def test_any_of_with_fresh_timeout_does_not_fire_instantly(self, env):
        """Regression: a scheduled Timeout is 'triggered' but not yet
        fired; AnyOf must wait for it to actually process."""
        def proc(env):
            pending = env.event()
            deadline = env.timeout(5)
            winner = yield env.any_of([pending, deadline])
            return (env.now, winner is deadline)
        assert drive(env, proc(env)) == (5, True)

    def test_all_of_empty_fires_immediately(self, env):
        def proc(env):
            values = yield env.all_of([])
            return values
        assert drive(env, proc(env)) == []

    def test_condition_mixed_environments_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            AllOf(env, [env.timeout(1), other.timeout(1)])

    def test_all_of_propagates_failure(self, env):
        failing = env.event()

        def proc(env):
            try:
                yield env.all_of([env.timeout(5), failing])
            except KeyError as exc:
                return (env.now, str(exc))

        def firer(env):
            yield env.timeout(1)
            failing.fail(KeyError("bad"))
        process = env.process(proc(env))
        env.process(firer(env))
        env.run()
        assert process.value == (1, "'bad'")

    def test_any_of_already_processed_event(self, env):
        def proc(env):
            first = env.timeout(1, value="first")
            yield first  # processed now
            winner = yield env.any_of([first, env.timeout(10)])
            return (env.now, winner.value)
        assert drive(env, proc(env)) == (1, "first")


class TestSchedulingTies:
    """Entries that tie on (time, priority) must be ordered by the
    unique sequence key — the queues may never compare the event
    payloads themselves (events define no ordering, so a key collision
    would surface as a TypeError from the heap)."""

    def test_equal_time_heap_entries_fire_in_fifo_order(self, env):
        def proc(env):
            # A far-future timeout parks the lane at t=10, so every
            # subsequent t=5 timeout is out of order and lands on the
            # overflow heap, where all of them tie on time.
            far = env.timeout(10)
            values = []
            ties = [env.timeout(5, value=i) for i in range(8)]
            for tie in ties:
                values.append((yield tie))
            yield far
            return values
        assert drive(env, proc(env)) == list(range(8))

    def test_lane_and_heap_entries_merge_deterministically(self, env):
        order = []

        def waiter(env, delay, tag):
            yield env.timeout(delay)
            order.append((env.now, tag))
        # lane: 5, 10 (monotone); heap: 7, 5 (out of order). The two
        # t=5 entries live in *different* queues and must still fire
        # in scheduling order.
        env.process(waiter(env, 5, "lane-5"))
        env.process(waiter(env, 10, "lane-10"))
        env.process(waiter(env, 7, "heap-7"))
        env.process(waiter(env, 5, "heap-5"))
        env.run()
        assert order == [(5, "lane-5"), (5, "heap-5"),
                         (7, "heap-7"), (10, "lane-10")]

    def test_non_comparable_event_payloads_never_compared(self, env):
        """Regression: succeed a batch of plain Events carrying dict
        values at the same instant; ordering them would need an Event
        comparison and raise TypeError if keys ever collided."""
        results = []

        def waiter(env, event):
            value = yield event
            results.append(value["tag"])
        events = [Event(env) for _ in range(6)]
        for index, event in enumerate(events):
            env.process(waiter(env, event))
            event.succeed({"tag": index})
        env.run()
        assert results == list(range(6))
