"""Executor-level tests: access paths, predicates, expressions, DDL."""

import pytest

from repro.engine import DbmsInstance, Session
from repro.sim import Environment

from _helpers import drive


@pytest.fixture
def instance(env):
    inst = DbmsInstance(env, "n0")
    inst.create_tenant("T")

    def setup(env):
        s = Session(inst, "T")
        yield from s.execute(
            "CREATE TABLE book (id INT PRIMARY KEY, subject VARCHAR, "
            "price FLOAT, stock INT)")
        yield from s.execute("CREATE INDEX idx_subject ON book (subject)")
        yield from s.execute("BEGIN")
        rows = [(1, "db", 10.0, 5), (2, "db", 20.0, 3),
                (3, "os", 30.0, 7), (4, "ml", 15.5, 2),
                (5, "db", 25.0, 0)]
        for rid, subject, price, stock in rows:
            result = yield from s.execute(
                "INSERT INTO book (id, subject, price, stock) "
                "VALUES (%d, '%s', %s, %d)" % (rid, subject, price, stock))
            assert result.ok, result.error
        yield from s.execute("COMMIT")
    drive(env, setup(env))
    return inst


def _query(env, instance, sql):
    session = Session(instance, "T")

    def proc(env):
        result = yield from session.execute(sql)
        return result
    return drive(env, proc(env))


class TestAccessPaths:
    def test_pk_point_lookup(self, env, instance):
        result = _query(env, instance, "SELECT price FROM book WHERE id = 3")
        assert result.rows == [{"price": 30.0}]

    def test_secondary_index_lookup(self, env, instance):
        result = _query(env, instance,
                        "SELECT id FROM book WHERE subject = 'db'")
        assert sorted(r["id"] for r in result.rows) == [1, 2, 5]

    def test_full_scan_with_range_predicate(self, env, instance):
        result = _query(env, instance,
                        "SELECT id FROM book WHERE price >= 20")
        assert sorted(r["id"] for r in result.rows) == [2, 3, 5]

    def test_conjunction(self, env, instance):
        result = _query(env, instance,
                        "SELECT id FROM book WHERE subject = 'db' "
                        "AND stock > 0")
        assert sorted(r["id"] for r in result.rows) == [1, 2]

    def test_no_match_returns_empty(self, env, instance):
        result = _query(env, instance,
                        "SELECT id FROM book WHERE id = 999")
        assert result.rows == []

    def test_order_by_asc_and_desc(self, env, instance):
        asc = _query(env, instance,
                     "SELECT id FROM book ORDER BY price")
        desc = _query(env, instance,
                      "SELECT id FROM book ORDER BY price DESC")
        assert [r["id"] for r in asc.rows] == [1, 4, 2, 5, 3]
        assert [r["id"] for r in desc.rows] == \
            list(reversed([r["id"] for r in asc.rows]))

    def test_limit(self, env, instance):
        result = _query(env, instance,
                        "SELECT id FROM book ORDER BY id LIMIT 2")
        assert [r["id"] for r in result.rows] == [1, 2]

    def test_star_projection_returns_all_columns(self, env, instance):
        result = _query(env, instance, "SELECT * FROM book WHERE id = 1")
        assert set(result.rows[0]) == {"id", "subject", "price", "stock"}

    def test_unknown_column_in_where_is_error(self, env, instance):
        result = _query(env, instance,
                        "SELECT id FROM book WHERE ghost = 1")
        assert not result.ok

    def test_unknown_projection_column_is_error(self, env, instance):
        result = _query(env, instance, "SELECT ghost FROM book WHERE id = 1")
        assert not result.ok


class TestUpdateSemantics:
    def _update(self, env, instance, set_clause, where):
        session = Session(instance, "T")

        def proc(env):
            yield from session.execute("BEGIN")
            yield from session.execute("SELECT stock FROM book WHERE id = 1")
            result = yield from session.execute(
                "UPDATE book SET %s WHERE %s" % (set_clause, where))
            commit = yield from session.execute("COMMIT")
            return result, commit
        return drive(env, proc(env))

    def test_arithmetic_update(self, env, instance):
        result, commit = self._update(env, instance, "stock = stock - 2",
                                      "id = 1")
        assert result.affected == 1 and commit.ok
        after = _query(env, instance, "SELECT stock FROM book WHERE id = 1")
        assert after.rows[0]["stock"] == 3

    def test_multi_column_update(self, env, instance):
        self._update(env, instance, "price = 99.0, stock = 0", "id = 2")
        after = _query(env, instance,
                       "SELECT price, stock FROM book WHERE id = 2")
        assert after.rows[0] == {"price": 99.0, "stock": 0}

    def test_update_via_index_predicate(self, env, instance):
        result, _commit = self._update(env, instance, "stock = stock + 1",
                                       "subject = 'db'")
        assert result.affected == 3

    def test_update_no_match_affects_zero(self, env, instance):
        result, _commit = self._update(env, instance, "stock = 1",
                                       "id = 404")
        assert result.affected == 0

    def test_expression_reads_pre_update_values(self, env, instance):
        """SET expressions evaluate against the row's snapshot value."""
        session = Session(instance, "T")

        def proc(env):
            yield from session.execute("BEGIN")
            yield from session.execute("SELECT price FROM book WHERE id = 3")
            yield from session.execute(
                "UPDATE book SET price = price * 2 WHERE id = 3")
            yield from session.execute(
                "UPDATE book SET price = price * 2 WHERE id = 3")
            yield from session.execute("COMMIT")
        drive(env, proc(env))
        after = _query(env, instance, "SELECT price FROM book WHERE id = 3")
        assert after.rows[0]["price"] == 120.0


class TestDelete:
    def test_delete_by_pk(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            yield from session.execute("BEGIN")
            yield from session.execute("SELECT id FROM book WHERE id = 4")
            result = yield from session.execute(
                "DELETE FROM book WHERE id = 4")
            yield from session.execute("COMMIT")
            return result.affected
        assert drive(env, proc(env)) == 1
        after = _query(env, instance, "SELECT id FROM book WHERE id = 4")
        assert after.rows == []

    def test_deleted_row_leaves_index(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            yield from session.execute("BEGIN")
            yield from session.execute("SELECT id FROM book WHERE id = 3")
            yield from session.execute("DELETE FROM book WHERE id = 3")
            yield from session.execute("COMMIT")
        drive(env, proc(env))
        after = _query(env, instance,
                       "SELECT id FROM book WHERE subject = 'os'")
        assert after.rows == []


class TestDdlThroughSession:
    def test_alter_table_add_column(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            result = yield from session.execute(
                "ALTER TABLE book ADD COLUMN note TEXT")
            return result.ok
        assert drive(env, proc(env))
        result = _query(env, instance,
                        "SELECT note FROM book WHERE id = 1")
        assert result.rows[0]["note"] is None

    def test_create_index_backfills(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            result = yield from session.execute(
                "CREATE INDEX idx_stock ON book (stock)")
            return result.ok
        assert drive(env, proc(env))
        table = instance.tenant("T").table("book")
        assert table.indexes["idx_stock"].entry_count() == 5

    def test_insert_without_pk_is_error(self, env, instance):
        result = _query(env, instance, "")
        session = Session(instance, "T")

        def proc(env):
            yield from session.execute("BEGIN")
            yield from session.execute("SELECT id FROM book WHERE id = 1")
            result = yield from session.execute(
                "INSERT INTO book (subject) VALUES ('x')")
            return result
        result = drive(env, proc(env))
        assert not result.ok

    def test_index_maintained_on_update(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            yield from session.execute("BEGIN")
            yield from session.execute(
                "SELECT subject FROM book WHERE id = 1")
            yield from session.execute(
                "UPDATE book SET subject = 'newsub' WHERE id = 1")
            yield from session.execute("COMMIT")
        drive(env, proc(env))
        moved = _query(env, instance,
                       "SELECT id FROM book WHERE subject = 'newsub'")
        assert [r["id"] for r in moved.rows] == [1]
        old = _query(env, instance,
                     "SELECT id FROM book WHERE subject = 'db'")
        assert 1 not in [r["id"] for r in old.rows]


class TestStatistics:
    def test_statement_counter(self, env, instance):
        before = instance.statements_executed
        _query(env, instance, "SELECT id FROM book WHERE id = 1")
        assert instance.statements_executed == before + 1

    def test_cpu_cost_override_takes_time(self, env, instance):
        session = Session(instance, "T")

        def proc(env):
            started = env.now
            yield from session.execute(
                "SELECT id FROM book WHERE id = 1", cpu_cost=0.5)
            return env.now - started
        assert drive(env, proc(env)) >= 0.5
