"""Tests for Mutex, CountdownLatch, Gate, Semaphore."""

import pytest

from repro.sim import CountdownLatch, Environment, Gate, Mutex, Semaphore

from _helpers import drive


class TestMutex:
    def test_uncontended_acquire_is_instant(self, env):
        mutex = Mutex(env)

        def proc(env):
            yield from mutex.acquire()
            at = env.now
            mutex.release()
            return at
        assert drive(env, proc(env)) == 0.0
        assert mutex.contended_acquisitions == 0

    def test_contended_fifo(self, env):
        mutex = Mutex(env)
        order = []

        def locker(env, tag):
            yield from mutex.acquire()
            order.append((tag, env.now))
            yield env.timeout(1)
            mutex.release()
        for tag in ("a", "b", "c"):
            env.process(locker(env, tag))
        env.run()
        assert order == [("a", 0), ("b", 1), ("c", 2)]

    def test_contention_penalty_charged(self, env):
        mutex = Mutex(env, contention_penalty=0.5)
        times = []

        def locker(env):
            yield from mutex.acquire()
            times.append(env.now)
            yield env.timeout(1)
            mutex.release()
        env.process(locker(env))
        env.process(locker(env))
        env.run()
        # second holder: waits 1, then pays 0.5 penalty
        assert times == [0, 1.5]

    def test_release_unlocked_raises(self, env):
        with pytest.raises(RuntimeError):
            Mutex(env).release()

    def test_contention_ratio(self, env):
        mutex = Mutex(env)

        def locker(env):
            yield from mutex.acquire()
            yield env.timeout(1)
            mutex.release()
        env.process(locker(env))
        env.process(locker(env))
        env.run()
        assert mutex.contention_ratio == pytest.approx(0.5)

    def test_ratio_zero_without_acquisitions(self, env):
        assert Mutex(env).contention_ratio == 0.0


class TestCountdownLatch:
    def test_zero_count_fires_immediately(self, env):
        latch = CountdownLatch(env, 0)

        def proc(env):
            yield latch.wait()
            return env.now
        assert drive(env, proc(env)) == 0.0

    def test_fires_after_all_arrivals(self, env):
        latch = CountdownLatch(env, 3)

        def arriver(env, delay):
            yield env.timeout(delay)
            latch.arrive()

        def waiter(env):
            yield latch.wait()
            return env.now
        for delay in (1, 2, 5):
            env.process(arriver(env, delay))
        assert drive(env, waiter(env)) == 5

    def test_over_arrival_raises(self, env):
        latch = CountdownLatch(env, 1)
        latch.arrive()
        with pytest.raises(RuntimeError):
            latch.arrive()

    def test_negative_count_rejected(self, env):
        with pytest.raises(ValueError):
            CountdownLatch(env, -1)


class TestGate:
    def test_open_gate_passes_immediately(self, env):
        gate = Gate(env, is_open=True)

        def proc(env):
            yield gate.wait()
            return env.now
        assert drive(env, proc(env)) == 0.0

    def test_closed_gate_blocks_until_open(self, env):
        gate = Gate(env, is_open=False)

        def waiter(env):
            yield gate.wait()
            return env.now

        def opener(env):
            yield env.timeout(7)
            gate.open()
        process = env.process(waiter(env))
        env.process(opener(env))
        env.run()
        assert process.value == 7

    def test_close_then_reopen_is_reusable(self, env):
        gate = Gate(env)
        times = []

        def crosser(env, delay):
            yield env.timeout(delay)
            yield gate.wait()
            times.append(env.now)

        def controller(env):
            yield env.timeout(1)
            gate.close()
            yield env.timeout(4)
            gate.open()
        env.process(crosser(env, 0))   # passes while open
        env.process(crosser(env, 2))   # blocked until t=5
        env.process(controller(env))
        env.run()
        assert times == [0, 5]

    def test_is_open_property(self, env):
        gate = Gate(env)
        assert gate.is_open
        gate.close()
        assert not gate.is_open


class TestSemaphore:
    def test_initial_value_permits(self, env):
        sem = Semaphore(env, value=2)
        times = []

        def proc(env):
            yield from sem.acquire()
            times.append(env.now)
            yield env.timeout(1)
            sem.release()
        for _count in range(3):
            env.process(proc(env))
        env.run()
        assert times == [0, 0, 1]

    def test_negative_value_rejected(self, env):
        with pytest.raises(ValueError):
            Semaphore(env, value=-1)

    def test_release_without_waiter_increments(self, env):
        sem = Semaphore(env, value=0)
        sem.release()

        def proc(env):
            yield from sem.acquire()
            return env.now
        assert drive(env, proc(env)) == 0.0
