"""Crash-offset sweep over a *resumed* migration (satellite 3).

The first crash parks the migration with a populated journal; the
source restarts and ``resume_migration`` re-enters.  A second crash is
then injected at a swept set of offsets across the resumed attempt's
whole duration — hitting the re-dump, restore, catch-up, and handover
windows — and after each crash the loop restarts and resumes again
until the migration completes.  At every offset the invariants must
hold: exactly one routing owner after every crash, no committed
transaction lost on the final owner, and no chunk ever shipped twice
(the network stays healthy in this sweep, so a duplicate entry in the
journal's install log could only come from resume re-shipping work the
destination already applied).
"""

import pytest

from repro.core import MigrationOptions
from repro.core.middleware import JOURNAL_COMPLETED
from repro.errors import SourceCrashed

from _helpers import drive
from test_fault_tolerance import RATES, build, seed_tenant

CHUNK_MB = 1.0
#: Second-crash offsets as fractions of a clean resume's duration.
#: 1.02 lands after the handover committed (crash on the *old* source
#: right after it stopped being the owner).
SWEEP = (0.05, 0.15, 0.3, 0.45, 0.6, 0.75, 0.85, 0.95, 1.02)
MAX_RESUMES = 6


def _options():
    return MigrationOptions(rates=RATES, chunk_mb=CHUNK_MB)


def _launch(env, middleware, *, resume):
    holder = {}

    def main(env):
        try:
            if resume:
                holder["report"] = yield from middleware.resume_migration(
                    "A", _options())
            else:
                holder["report"] = yield from middleware.migrate(
                    "A", "node1", _options())
        except SourceCrashed as exc:
            holder["error"] = exc
    env.process(main(env))
    return holder


def _park_first_attempt(env, cluster, middleware, crash_after=2.5):
    workload = seed_tenant(env, cluster, middleware, overhead_mb=10.0,
                           clients=3, txns=200, think_time=0.2)
    holder = _launch(env, middleware, resume=False)
    env.run(until=env.now + crash_after)
    assert "report" not in holder
    cluster.node("node0").instance.crash()
    env.run()
    assert "error" in holder
    return workload


def _clean_resume_duration():
    """Measure how long an uninterrupted resume takes (same scenario)."""
    from repro.sim import Environment
    env = Environment()
    cluster, middleware = build(env, nodes=2, resumable=True)
    _park_first_attempt(env, cluster, middleware)
    drive(env, cluster.node("node0").instance.restart())
    started = env.now
    holder = _launch(env, middleware, resume=True)
    env.run()
    assert holder["report"].outcome == "ok"
    return holder["report"].ended_at - started


@pytest.fixture(scope="module")
def resume_duration():
    return _clean_resume_duration()


def _assert_one_owner(middleware):
    owners = middleware.owners("A")
    assert len(owners) == 1, "split brain: %r" % (owners,)


def _assert_no_lost_commits(cluster, middleware, workload):
    owner = middleware.route("A")
    table = cluster.node(owner).instance.tenant("A").table("kv")
    for key, increments in workload.committed_increments.items():
        assert table.chain(key).latest()["v"] == increments, \
            "key %d lost increments on owner %s" % (key, owner)


@pytest.mark.parametrize("fraction", SWEEP)
def test_second_crash_during_resume(env, fraction, resume_duration):
    cluster, middleware = build(env, nodes=2, resumable=True)
    workload = _park_first_attempt(env, cluster, middleware)
    _assert_one_owner(middleware)
    source = cluster.node("node0").instance

    drive(env, source.restart())
    holder = _launch(env, middleware, resume=True)
    crash_at = env.now + fraction * resume_duration
    env.run(until=crash_at)
    # Past-1.0 offsets land after the handover committed: the crash
    # hits the *former* source, which must not disturb the new owner.
    source.crash()
    env.run()
    _assert_one_owner(middleware)

    # Restart-and-resume until the migration finally lands.
    resumes = 0
    while "report" not in holder or \
            holder.get("report") and holder["report"].outcome != "ok":
        if "error" in holder or (
                "report" in holder
                and holder["report"].outcome != "ok"):
            assert resumes < MAX_RESUMES, \
                "migration did not land after %d resumes" % resumes
            resumes += 1
            drive(env, source.restart())
            holder = _launch(env, middleware, resume=True)
            env.run()
            _assert_one_owner(middleware)
        else:  # pragma: no cover - defensive
            env.run()

    report = holder["report"]
    assert report.outcome == "ok"
    assert report.resumed is True
    assert report.consistent is True
    _assert_one_owner(middleware)
    assert middleware.route("A") in ("node0", "node1")

    journal = middleware.migration_journal("A")
    assert journal.state == JOURNAL_COMPLETED
    dest = middleware.route("A")
    if dest == "node1":
        log = journal.chunk_log["node1"]
        # No chunk double-shipped across first attempt + every resume,
        # and together the installs cover the frozen plan exactly.
        assert len(log) == len(set(log)), \
            "double-shipped chunks at offset %.2f: %r" % (fraction, log)
        assert sorted(log) == list(range(journal.total_chunks))

    # Let the workload settle, then check nothing committed was lost.
    env.run()
    _assert_no_lost_commits(cluster, middleware, workload)
