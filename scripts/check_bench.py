#!/usr/bin/env python3
"""CI regression gate over ``BENCH_*.json`` bench artifacts.

Validates the artifacts ``repro bench`` wrote (schema documented in
EXPERIMENTS.md): every case carries the required fields, phase durations
are non-negative and consistent with the wall clock, pipelined cases
report chunks, and — for the ``pipeline`` scenario — the streamed path
beats the serial path at every size by at least ``--min-improvement``
(a *relative* ordering; per ROADMAP.md's tolerance policy the gate
never asserts absolute timings).  For the ``multitenant_parallel``
scenario, every scheduled run must beat (or at worst match) the
serialized baseline, and ``--min-parallel-improvement`` gates the
headline (fifo, uncapped) comparison — again relative only.

The watermark gate (``--require-watermark``) is structural and
relative, per the same tolerance policy: the pipeline artifact must
carry watermark rows (``strategy: "watermark"``, chunked), watermark
must not be slower than serial at any size, and at the largest size —
4x the rate model's ``base_mb`` knee, where the dump window is widest —
the watermark catch-up window must be *strictly* smaller than the
pipelined one (the whole point of the virtual-cut path: catch-up
bounded by chunk size instead of dump duration).

Like ``check_trace.py`` this script is deliberately stdlib-only and
does not import :mod:`repro`, so a bug that breaks the bench harness
fails the gate instead of hiding it.

For ``BENCH_rebalance.json`` (the continuous control plane) the gate
is structural and relative only: the imbalance coefficient must
strictly decrease across every hotspot phase, at least one move must
have been submitted, and every safety counter (lost commits, value
mismatches, cooldown violations, owner violations) must be zero.

For ``BENCH_simthroughput.json`` (real wall-clock substrate rates) the
structural checks apply to its own schema, and ``--baseline`` enables
the perf gate: every case's throughput in the checked artifact must be
at least ``(1 - --max-throughput-regression)`` times the same case's
throughput in the baseline artifact — a relative comparison of two runs
on the same runner, never an absolute bar.

For ``BENCH_router.json`` (per-request downtime through the router
tier) the gate is again structural and relative only: all three
snapshot strategies present with >= 25 clean migrations each, every
zero-loss safety counter (lost requests, phantom increments, dropped
acks, park rejects/timeouts) at zero, monotone downtime percentiles,
and the headline ordering — the watermark strategy's downtime p99
strictly below the serial one's.  ``--require-router`` additionally
fails the run when no router artifact was among the inputs, so the CI
job cannot silently skip the scenario.

Usage::

    python scripts/check_bench.py BENCH_pipeline.json \
        BENCH_policies.json BENCH_multitenant_parallel.json \
        --min-improvement 0.25 --min-parallel-improvement 0.1

    python scripts/check_bench.py BENCH_simthroughput.json \
        --baseline base/BENCH_simthroughput.json \
        --max-throughput-regression 0.3
"""

import argparse
import json
import sys

CASE_FIELDS = ("scenario", "policy", "size_mb", "pipelined",
               "wall_clock", "phases", "rounds", "group_commit",
               "chunks", "ship_retries", "consistent")
PHASE_NAMES = ("dump", "restore", "catch-up", "handover")
GROUP_COMMIT_FIELDS = ("commits", "flushes", "mean_group_size")


def load(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except OSError as exc:
        raise SystemExit("cannot read bench artifact %s: %s"
                         % (path, exc))
    except json.JSONDecodeError as exc:
        raise SystemExit("%s: invalid JSON: %s" % (path, exc))


def check_case(index, case):
    """Structural failures for one case record."""
    failures = []
    label = "case %d" % index
    for field in CASE_FIELDS:
        if field not in case:
            failures.append("%s: missing field %r" % (label, field))
    if failures:
        return failures
    # The snapshot path: pre-watermark artifacts spell it through the
    # ``pipelined`` boolean; watermark rows carry an explicit
    # ``strategy`` key (serial/pipelined rows deliberately do not, so
    # their schema stays byte-identical across artifact versions).
    strategy = case.get("strategy") or ("pipelined" if case["pipelined"]
                                        else "serial")
    label = "case %d (%s/%s, %.0f MB, %s)" % (
        index, case["scenario"], case["policy"], case["size_mb"],
        strategy)
    if case["wall_clock"] <= 0:
        failures.append("%s: wall_clock must be positive" % label)
    for phase in PHASE_NAMES:
        if phase not in case["phases"]:
            failures.append("%s: missing phase %r" % (label, phase))
        elif case["phases"][phase] < 0:
            failures.append("%s: phase %r has negative duration"
                            % (label, phase))
    phase_sum = sum(case["phases"].get(p, 0.0) for p in PHASE_NAMES)
    if phase_sum > case["wall_clock"] * 1.001:
        failures.append("%s: phases sum to %.3f s > wall_clock %.3f s"
                        % (label, phase_sum, case["wall_clock"]))
    for field in GROUP_COMMIT_FIELDS:
        if field not in case["group_commit"]:
            failures.append("%s: group_commit missing %r"
                            % (label, field))
    if strategy == "watermark" and case["pipelined"]:
        failures.append("%s: watermark case claims pipelined" % label)
    if strategy in ("pipelined", "watermark") and case["chunks"] < 1:
        failures.append("%s: chunked case reports no chunks" % label)
    if strategy == "serial" and case["chunks"] != 0:
        failures.append("%s: serial case reports %d chunks"
                        % (label, case["chunks"]))
    if case["consistent"] is False:
        failures.append("%s: migration was NOT consistent" % label)
    return failures


def check_pipeline_comparisons(data, min_improvement):
    """Relative-ordering failures for the pipeline scenario."""
    failures = []
    comparisons = data.get("comparisons") or []
    if not comparisons:
        failures.append("pipeline artifact has no comparisons")
        return failures
    for comparison in comparisons:
        for field in ("size_mb", "serial_wall_clock",
                      "pipelined_wall_clock", "improvement"):
            if field not in comparison:
                failures.append("comparison missing field %r" % field)
                return failures
        # A database that fits in one chunk legitimately ties, so per
        # size the bar is non-regression; --min-improvement gates the
        # headline (largest-size) comparison strictly.
        if (comparison["pipelined_wall_clock"]
                > comparison["serial_wall_clock"] * 1.0001):
            failures.append(
                "@ %.0f MB: pipelined (%.3f s) is slower than "
                "serial (%.3f s)"
                % (comparison["size_mb"],
                   comparison["pipelined_wall_clock"],
                   comparison["serial_wall_clock"]))
    headline = data.get("headline_improvement")
    if headline is None:
        failures.append("headline_improvement missing")
    elif min_improvement is not None and headline < min_improvement:
        failures.append(
            "headline improvement %.1f%% < required %.1f%%"
            % (100.0 * headline, 100.0 * min_improvement))
    return failures


WATERMARK_COMPARISON_FIELDS = ("watermark_wall_clock",
                               "watermark_improvement",
                               "watermark_catchup", "pipelined_catchup")


def check_watermark_comparisons(data, required):
    """Relative-ordering failures for the watermark snapshot path.

    With ``required`` (the ``--require-watermark`` gate) the pipeline
    artifact must carry the three-way comparison; without it, a
    pre-watermark artifact passes untouched but any watermark fields
    that *are* present still have to be internally consistent.
    """
    failures = []
    comparisons = [c for c in (data.get("comparisons") or [])
                   if any(f in c for f in WATERMARK_COMPARISON_FIELDS)]
    if not comparisons:
        if required:
            failures.append("--require-watermark: pipeline artifact "
                            "has no watermark comparisons")
        return failures
    if not any(case.get("strategy") == "watermark"
               for case in data.get("cases", [])):
        failures.append("watermark comparisons present but no "
                        "watermark cases")
    checked = []
    for comparison in comparisons:
        missing = [f for f in WATERMARK_COMPARISON_FIELDS
                   if f not in comparison]
        if missing:
            failures.append("comparison @ %.0f MB: missing watermark "
                            "fields %s" % (comparison.get("size_mb", -1),
                                           ", ".join(missing)))
            continue
        label = "@ %.0f MB" % comparison["size_mb"]
        # Non-regression vs serial at every size (like the pipelined
        # bar above); the catch-up ordering is gated at the largest
        # size only, where the dump window is widest.
        if (comparison["watermark_wall_clock"]
                > comparison["serial_wall_clock"] * 1.0001):
            failures.append(
                "%s: watermark (%.3f s) is slower than serial (%.3f s)"
                % (label, comparison["watermark_wall_clock"],
                   comparison["serial_wall_clock"]))
        for field in ("watermark_catchup", "pipelined_catchup"):
            if comparison[field] < 0:
                failures.append("%s: negative %s" % (label, field))
        checked.append(comparison)
    if checked:
        largest = max(checked, key=lambda c: c["size_mb"])
        if not (largest["watermark_catchup"]
                < largest["pipelined_catchup"]):
            failures.append(
                "@ %.0f MB: watermark catch-up window (%.3f s) is not "
                "strictly smaller than the pipelined one (%.3f s)"
                % (largest["size_mb"], largest["watermark_catchup"],
                   largest["pipelined_catchup"]))
    return failures


PARALLEL_COMPARISON_FIELDS = ("policy", "max_concurrent",
                              "serialized_wall_clock",
                              "concurrent_wall_clock", "improvement",
                              "max_in_flight", "total_queue_wait")


def check_parallel_comparisons(data, min_improvement):
    """Relative-ordering failures for multitenant_parallel."""
    failures = []
    modes = {case.get("mode") for case in data.get("cases", [])}
    if not any(m == "serialized" for m in modes if m):
        failures.append("no serialized baseline cases")
    if not any(m and m.startswith("concurrent:") for m in modes):
        failures.append("no concurrent (scheduled) cases")
    comparisons = data.get("comparisons") or []
    if not comparisons:
        failures.append("multitenant_parallel artifact has no "
                        "comparisons")
        return failures
    for comparison in comparisons:
        for field in PARALLEL_COMPARISON_FIELDS:
            if field not in comparison:
                failures.append("comparison missing field %r" % field)
                return failures
        label = "schedule %s" % comparison["policy"]
        if comparison["max_concurrent"]:
            label += " (cap %d)" % comparison["max_concurrent"]
        # Non-regression for every policy/cap point; the strict bar
        # (--min-parallel-improvement) applies to the headline only.
        if (comparison["concurrent_wall_clock"]
                > comparison["serialized_wall_clock"] * 1.0001):
            failures.append(
                "%s: concurrent (%.3f s) is slower than serialized "
                "(%.3f s)"
                % (label, comparison["concurrent_wall_clock"],
                   comparison["serialized_wall_clock"]))
        if comparison["max_in_flight"] < 1:
            failures.append("%s: max_in_flight < 1" % label)
        if (comparison["max_concurrent"]
                and comparison["max_in_flight"]
                > comparison["max_concurrent"]):
            failures.append(
                "%s: max_in_flight %d exceeds the admission cap"
                % (label, comparison["max_in_flight"]))
        if comparison["total_queue_wait"] < 0:
            failures.append("%s: negative total_queue_wait" % label)
    headline = data.get("headline_improvement")
    if headline is None:
        failures.append("headline_improvement missing")
    elif min_improvement is not None and headline < min_improvement:
        failures.append(
            "headline parallel improvement %.1f%% < required %.1f%%"
            % (100.0 * headline, 100.0 * min_improvement))
    return failures


SIMTHROUGHPUT_CASE_FIELDS = ("case", "metric", "operations",
                             "wall_seconds", "throughput")
SIMTHROUGHPUT_REQUIRED_CASES = ("kernel_ping_pong", "parser_replay",
                                "mvcc_read", "engine_point_select",
                                "migration_e2e")


def check_simthroughput(data, args):
    """Structural + relative-regression failures for simthroughput."""
    failures = []
    cases = {}
    for index, case in enumerate(data.get("cases", [])):
        label = "case %d" % index
        missing = [f for f in SIMTHROUGHPUT_CASE_FIELDS if f not in case]
        if missing:
            failures.append("%s: missing fields %s"
                            % (label, ", ".join(missing)))
            continue
        label = "case %s" % case["case"]
        if case["operations"] <= 0:
            failures.append("%s: operations must be positive" % label)
        if case["wall_seconds"] <= 0:
            failures.append("%s: wall_seconds must be positive" % label)
        if case["throughput"] <= 0:
            failures.append("%s: throughput must be positive" % label)
        cases[case["case"]] = case
    for name in SIMTHROUGHPUT_REQUIRED_CASES:
        if name not in cases:
            failures.append("missing required case %r" % name)
    smoke = data.get("paper_smoke")
    if smoke is not None:
        for field in ("wall_seconds", "budget_seconds", "within_budget",
                      "events_processed"):
            if field not in smoke:
                failures.append("paper_smoke missing field %r" % field)
        if smoke.get("within_budget") is False:
            failures.append(
                "paper-profile migration took %.1f s, over the %.0f s "
                "budget" % (smoke.get("wall_seconds", float("nan")),
                            smoke.get("budget_seconds", float("nan"))))
    if args.baseline is not None:
        base = load(args.baseline)
        if base.get("bench") != "simthroughput":
            failures.append("--baseline %s is not a simthroughput "
                            "artifact" % args.baseline)
            return failures
        tolerance = args.max_throughput_regression
        base_cases = {case.get("case"): case
                      for case in base.get("cases", [])}
        for name, case in sorted(cases.items()):
            base_case = base_cases.get(name)
            if base_case is None:
                # New case with no baseline counterpart: nothing to
                # compare against (happens when a PR adds a case).
                continue
            floor = base_case["throughput"] * (1.0 - tolerance)
            if case["throughput"] < floor:
                failures.append(
                    "case %s: throughput %.0f/s regressed more than "
                    "%.0f%% vs baseline %.0f/s"
                    % (name, case["throughput"], 100.0 * tolerance,
                       base_case["throughput"]))
    return failures


REBALANCE_PHASE_FIELDS = ("phase", "hot_node", "started", "ended",
                          "imbalance_before", "imbalance_after",
                          "moves_submitted", "moves_ok")
REBALANCE_MOVE_FIELDS = ("tenant", "source", "destination",
                         "decided_at", "outcome", "attempts",
                         "predicted_cost", "observed_cost")
REBALANCE_SUMMARY_FIELDS = ("samples", "decisions", "moves_submitted",
                            "moves_ok", "moves_failed",
                            "mean_cost_error", "committed_txns",
                            "lost_commits", "value_mismatches",
                            "owner_violations", "cooldown_violations",
                            "converged", "ok")


def check_rebalance(data):
    """Structural + relative failures for the rebalance scenario.

    All relative per ROADMAP.md's tolerance policy: the imbalance
    coefficient must strictly *decrease* across every hotspot phase
    and every safety counter must be zero — no absolute timings or
    absolute imbalance values are asserted.
    """
    failures = []
    for index, phase in enumerate(data.get("cases", [])):
        label = "phase %d" % index
        missing = [f for f in REBALANCE_PHASE_FIELDS if f not in phase]
        if missing:
            failures.append("%s: missing fields %s"
                            % (label, ", ".join(missing)))
            continue
        label = "phase %d (hot %s)" % (phase["phase"],
                                       phase["hot_node"])
        if phase["ended"] <= phase["started"]:
            failures.append("%s: ended <= started" % label)
        if phase["imbalance_after"] >= phase["imbalance_before"]:
            failures.append(
                "%s: imbalance did not decrease (%.3f -> %.3f)"
                % (label, phase["imbalance_before"],
                   phase["imbalance_after"]))
        if phase["moves_ok"] > phase["moves_submitted"]:
            failures.append("%s: moves_ok exceeds moves_submitted"
                            % label)
    moves = data.get("moves")
    if moves is None:
        failures.append("rebalance artifact has no moves list")
        moves = []
    for index, move in enumerate(moves):
        missing = [f for f in REBALANCE_MOVE_FIELDS if f not in move]
        if missing:
            failures.append("move %d: missing fields %s"
                            % (index, ", ".join(missing)))
            continue
        label = "move %d (%s)" % (index, move["tenant"])
        if move["source"] == move["destination"]:
            failures.append("%s: source == destination" % label)
        if move["outcome"] == "ok" and move["observed_cost"] is None:
            failures.append("%s: ok move has no observed_cost" % label)
        if move["predicted_cost"] <= 0:
            failures.append("%s: predicted_cost must be positive"
                            % label)
    summary = data.get("summary")
    if summary is None:
        failures.append("rebalance artifact has no summary")
        return failures
    missing = [f for f in REBALANCE_SUMMARY_FIELDS if f not in summary]
    if missing:
        failures.append("summary: missing fields %s"
                        % ", ".join(missing))
        return failures
    if summary["moves_submitted"] < 1:
        failures.append("the rebalancer submitted no moves")
    if summary["moves_submitted"] != len(moves):
        failures.append("summary.moves_submitted = %d but the moves "
                        "list has %d entries"
                        % (summary["moves_submitted"], len(moves)))
    for counter in ("lost_commits", "value_mismatches",
                    "cooldown_violations"):
        if summary[counter] != 0:
            failures.append("summary.%s = %s, expected 0"
                            % (counter, summary[counter]))
    if summary["owner_violations"]:
        failures.append("owner violations: %s"
                        % summary["owner_violations"])
    if not summary["converged"]:
        failures.append("run did not converge (summary.converged)")
    if not summary["ok"]:
        failures.append("summary.ok is false")
    return failures


ROUTER_STRATEGY_FIELDS = ("strategy", "migrations_ok",
                          "migrations_failed", "committed_txns",
                          "aborted_txns", "lost_requests",
                          "phantom_increments", "downtime", "requests",
                          "blocked_requests", "stale_routes",
                          "park_rejects", "park_timeouts",
                          "acks_dropped")
ROUTER_ZERO_COUNTERS = ("migrations_failed", "lost_requests",
                        "phantom_increments", "acks_dropped",
                        "park_rejects", "park_timeouts")
ROUTER_DOWNTIME_FIELDS = ("count", "mean", "p50", "p90", "p99", "max")
ROUTER_REQUIRED_STRATEGIES = ("serial", "pipelined", "watermark")
ROUTER_COMPARISON_FIELDS = ("baseline", "candidate", "serial_p99",
                            "candidate_p99", "p99_improvement")
ROUTER_MIN_MIGRATIONS = 25


def check_router(data):
    """Structural + relative failures for the router scenario.

    Per ROADMAP.md's tolerance policy everything here is structural or
    relative: >= 25 clean migrations per strategy, zero-loss safety
    counters, monotone downtime percentiles, and the headline ordering
    — the watermark strategy's per-request downtime p99 strictly below
    the serial one's.  No absolute durations are asserted.
    """
    failures = []
    migrations = data.get("migrations_per_strategy")
    if not migrations or migrations < ROUTER_MIN_MIGRATIONS:
        failures.append("migrations_per_strategy is %r, need >= %d"
                        % (migrations, ROUTER_MIN_MIGRATIONS))
    records = {}
    for index, record in enumerate(data.get("strategies", [])):
        label = "strategy %d" % index
        missing = [f for f in ROUTER_STRATEGY_FIELDS if f not in record]
        if missing:
            failures.append("%s: missing fields %s"
                            % (label, ", ".join(missing)))
            continue
        label = "strategy %s" % record["strategy"]
        records[record["strategy"]] = record
        if migrations and record["migrations_ok"] < migrations:
            failures.append("%s: only %d of %d migrations ok"
                            % (label, record["migrations_ok"],
                               migrations))
        for counter in ROUTER_ZERO_COUNTERS:
            if record[counter] != 0:
                failures.append("%s: %s = %s, expected 0"
                                % (label, counter, record[counter]))
        downtime = record["downtime"]
        missing = [f for f in ROUTER_DOWNTIME_FIELDS
                   if f not in downtime]
        if missing:
            failures.append("%s: downtime histogram missing %s"
                            % (label, ", ".join(missing)))
            continue
        if downtime["count"] < 1:
            failures.append("%s: empty downtime histogram — no request "
                            "ever observed a handover" % label)
        if not (0.0 <= downtime["p50"] <= downtime["p90"]
                <= downtime["p99"] <= downtime["max"]):
            failures.append("%s: downtime percentiles are not monotone "
                            "(p50 %.6f, p90 %.6f, p99 %.6f, max %.6f)"
                            % (label, downtime["p50"], downtime["p90"],
                               downtime["p99"], downtime["max"]))
    for name in ROUTER_REQUIRED_STRATEGIES:
        if name not in records:
            failures.append("missing strategy record %r" % name)
    comparisons = data.get("comparisons") or []
    if not comparisons:
        failures.append("router artifact has no comparisons")
    for comparison in comparisons:
        missing = [f for f in ROUTER_COMPARISON_FIELDS
                   if f not in comparison]
        if missing:
            failures.append("comparison: missing fields %s"
                            % ", ".join(missing))
    if "serial" in records and "watermark" in records:
        serial_p99 = records["serial"]["downtime"]["p99"]
        watermark_p99 = records["watermark"]["downtime"]["p99"]
        if not watermark_p99 < serial_p99:
            failures.append(
                "watermark downtime p99 (%.6f s) is not strictly below "
                "serial (%.6f s)" % (watermark_p99, serial_p99))
    return failures


def check_file(path, args):
    """Return a list of failures for one BENCH_*.json artifact."""
    failures = []
    data = load(path)
    for field in ("bench", "profile", "seed"):
        if field not in data:
            failures.append("missing top-level field %r" % field)
    if failures:
        return failures
    if data["bench"] == "router":
        # Its own schema: per-strategy records, no migration cases.
        failures.extend(check_router(data))
        return failures
    if "cases" not in data:
        failures.append("missing top-level field 'cases'")
        return failures
    if not data["cases"]:
        failures.append("artifact has no cases")
    if data["bench"] == "simthroughput":
        # Its own schema: skip the migration-case validation entirely.
        failures.extend(check_simthroughput(data, args))
        return failures
    if data["bench"] == "rebalance":
        # Also its own schema (per-phase records, not migration cases).
        failures.extend(check_rebalance(data))
        return failures
    for index, case in enumerate(data["cases"]):
        failures.extend(check_case(index, case))
    if data["bench"] == "pipeline":
        failures.extend(
            check_pipeline_comparisons(data, args.min_improvement))
        failures.extend(
            check_watermark_comparisons(data, args.require_watermark))
    elif data["bench"] == "multitenant_parallel":
        failures.extend(
            check_parallel_comparisons(data,
                                       args.min_parallel_improvement))
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Gate CI on BENCH_*.json bench artifacts.")
    parser.add_argument("artifacts", nargs="+", metavar="BENCH",
                        help="BENCH_*.json files to check")
    parser.add_argument("--min-improvement", type=float, default=None,
                        help="minimum relative headline improvement of "
                             "pipelined over serial (e.g. 0.25)")
    parser.add_argument("--min-parallel-improvement", type=float,
                        default=None,
                        help="minimum relative headline improvement of "
                             "scheduler-concurrent over serialized "
                             "multi-tenant migration (e.g. 0.1)")
    parser.add_argument("--require-watermark", action="store_true",
                        help="require the three-way watermark "
                             "comparison in the pipeline artifact and "
                             "gate its catch-up window (strictly "
                             "smaller than pipelined at the largest "
                             "size)")
    parser.add_argument("--require-router", action="store_true",
                        help="require a BENCH_router.json artifact "
                             "among the inputs (fails the run when the "
                             "router downtime scenario was skipped)")
    parser.add_argument("--baseline", default=None, metavar="BENCH",
                        help="baseline BENCH_simthroughput.json to "
                             "compare throughputs against (the perf "
                             "gate's base-commit run)")
    parser.add_argument("--max-throughput-regression", type=float,
                        default=0.3,
                        help="maximum tolerated relative throughput "
                             "drop per case vs --baseline "
                             "(default: 0.3)")
    args = parser.parse_args(argv)

    exit_code = 0
    benches_seen = set()
    for path in args.artifacts:
        failures = check_file(path, args)
        benches_seen.add(load(path).get("bench"))
        if failures:
            exit_code = 1
            print("FAIL %s" % path)
            for failure in failures:
                print("  - %s" % failure)
        else:
            print("PASS %s" % path)
    if args.require_router and "router" not in benches_seen:
        exit_code = 1
        print("FAIL --require-router: no router artifact among the "
              "inputs (saw: %s)"
              % (", ".join(sorted(b for b in benches_seen if b))
                 or "none"))
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
