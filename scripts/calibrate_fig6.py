"""Calibration driver for Figure 6 (not part of the library)."""
import sys
import time

from repro.sim import Environment, StreamFactory
from repro.cluster import Cluster
from repro.core import (Middleware, MiddlewareConfig, MADEUS, B_ALL, B_MIN,
                        B_CON, policy_by_name)
from repro.errors import CatchUpTimeout
from repro.engine.dump import TransferRates
from repro.workload.tpcw import (EbConfig, PopulationParams, TpcwContext,
                                 populate, start_tenant_load)


def run(policy, ebs, deadline=1200.0):
    env = Environment()
    cluster = Cluster(env)
    n0 = cluster.add_node("node0")
    cluster.add_node("node1")
    mw = Middleware(env, cluster, MiddlewareConfig(
        policy=policy, verify_consistency=True, catchup_deadline=deadline))
    params = PopulationParams(items=100000, ebs=100, row_scale=0.005)
    sf = StreamFactory(7)
    populate(n0.instance, "A", params, sf.stream("pop"))
    mw.register_tenant("A", "node0")
    scaled = params.scaled_cardinalities()
    ctx = TpcwContext(customers=scaled["customer"], items=scaled["item"],
                      orders=scaled["orders"])
    cfg = EbConfig(ebs=ebs, think_time=7.0, cpu_scale=1.35)
    start_tenant_load(env, mw, "A", ctx, cfg, seed=1)
    out = {}

    def mig(env):
        yield env.timeout(30)
        try:
            rep = yield from mw.migrate("A", "node1", TransferRates())
            out["r"] = rep
        except CatchUpTimeout as exc:
            out["na"] = exc
    env.process(mig(env))
    t0 = time.time()
    while not out and env.now < 2500:
        env.run(until=env.now + 25)
    wall = time.time() - t0
    if "r" in out:
        r = out["r"]
        print("%-7s ebs=%4d mig=%7.1f s (dump %.0f restore %.0f catchup "
              "%.0f switch %.1f) sync=%5d group=%.2f cons=%s wall=%.0fs"
              % (policy.name, ebs, r.migration_time, r.dump_time,
                 r.restore_time, r.catchup_time, r.switch_time,
                 r.syncsets_propagated, r.slave_mean_group_size,
                 r.consistent, wall), flush=True)
    else:
        e = out.get("na")
        print("%-7s ebs=%4d N/A (backlog=%s) wall=%.0fs"
              % (policy.name, ebs, getattr(e, "backlog", "?"), wall),
              flush=True)


if __name__ == "__main__":
    policy = policy_by_name(sys.argv[1])
    for ebs_arg in sys.argv[2:]:
        run(policy, int(ebs_arg))
