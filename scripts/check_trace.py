#!/usr/bin/env python3
"""CI regression gate over migration trace artifacts.

Reads the ``trace_*.jsonl`` files a benchmark run exported (via
``REPRO_TRACE_DIR``) and asserts structural facts about the migrations
they record -- phases present and ordered, and for Madeus runs the
conductor actually batched work (``propagation.rounds``) and ran
players concurrently (``propagation.max_concurrent_players``).  The
values come from the trace itself, never from scraping stdout.

The script is deliberately stdlib-only and does not import
:mod:`repro`, so the gate stays independent of the library under test:
a bug that breaks the exporter fails the gate instead of hiding it.

Usage::

    python scripts/check_trace.py TRACE [TRACE ...] \
        --policy Madeus --min-rounds 10 --min-players 2 \
        --require-phase-order
"""

import argparse
import json
import sys

# Must match repro.obs.trace.PHASE_ORDER.
PHASE_ORDER = ("dump", "restore", "catch-up", "handover")
PHASE_RANK = {name: rank for rank, name in enumerate(PHASE_ORDER)}


def load_records(path):
    """Yield parsed JSON records, skipping blank lines."""
    try:
        handle = open(path)
    except OSError as exc:
        raise SystemExit("cannot read trace %s: %s" % (path, exc))
    with handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(
                    "%s:%d: invalid JSON: %s" % (path, lineno, exc))


def index_trace(path):
    """Split one trace file into meta / spans / events / metrics."""
    meta = {}
    spans = []
    events = []
    metrics = {}
    for record in load_records(path):
        kind = record.get("type")
        if kind == "meta":
            meta = record
        elif kind == "span":
            spans.append(record)
        elif kind == "event":
            events.append(record)
        elif kind == "metric":
            metrics[record.get("name")] = record
    return meta, spans, events, metrics


def check_phase_order(spans):
    """Return a list of problems with the phase spans (empty = ok)."""
    problems = []
    by_migration = {}
    for span in spans:
        if span.get("kind") != "phase":
            continue
        # the exporter writes the parent link as "parent"; accept the
        # older "parent_id" spelling too
        parent = span.get("parent", span.get("parent_id"))
        by_migration.setdefault(parent, []).append(span)
    if not by_migration:
        return ["no phase spans found"]
    for parent, phases in sorted(by_migration.items(),
                                 key=lambda item: str(item[0])):
        phases.sort(key=lambda s: s.get("start", 0.0))
        previous = None
        for span in phases:
            name = span.get("name")
            if name not in PHASE_RANK:
                problems.append("migration %s: unknown phase %r"
                                % (parent, name))
                continue
            if span.get("end") is None:
                problems.append("migration %s: phase %r never finished"
                                % (parent, name))
                continue
            if span["end"] < span["start"]:
                problems.append("migration %s: phase %r has negative "
                                "duration" % (parent, name))
            if previous is not None:
                if PHASE_RANK[name] < PHASE_RANK[previous["name"]]:
                    problems.append(
                        "migration %s: expected order %s but %r "
                        "follows %r" % (parent, "/".join(PHASE_ORDER),
                                        name, previous["name"]))
                # Pipelined snapshot: dump/restore (both tagged
                # pipelined) legitimately overlap; start order above
                # is still enforced.
                overlap_ok = (
                    span.get("attrs", {}).get("pipelined")
                    and previous.get("attrs", {}).get("pipelined"))
                if (previous.get("end") is not None
                        and span["start"] < previous["end"]
                        and not overlap_ok):
                    problems.append(
                        "migration %s: phase %r starts before %r ends"
                        % (parent, name, previous["name"]))
            previous = span
    return problems


def metric_value(metrics, name, key="value"):
    record = metrics.get(name)
    if record is None:
        return None
    return record.get(key)


def migration_attr(spans, name):
    for span in spans:
        if span.get("kind") == "migration":
            return span.get("attrs", {}).get(name)
    return None


def count_events(events, name):
    return sum(1 for event in events if event.get("name") == name)


def check_outcome(expected, spans, events):
    """Failures for ``--expect-outcome`` (ok / aborted / failover).

    ``failover`` means the migration *completed* (span outcome "ok")
    but only after promoting a standby -- visible as a positive
    ``failovers`` span attribute or a ``migration.failover`` event.
    """
    failures = []
    outcome = migration_attr(spans, "outcome")
    failovers = migration_attr(spans, "failovers") or 0
    failover_events = count_events(events, "migration.failover")
    if expected == "aborted":
        if outcome != "aborted":
            failures.append("migration outcome is %r, expected 'aborted'"
                            % outcome)
    else:
        if outcome != "ok":
            failures.append("migration outcome is %r, expected 'ok'"
                            % outcome)
        if expected == "failover" and not failovers and not failover_events:
            failures.append("expected a failover but the trace has no "
                            "migration.failover event and failovers = 0")
        if expected == "ok" and (failovers or failover_events):
            failures.append("expected a plain 'ok' outcome but the "
                            "migration failed over %s time(s)"
                            % (failovers or failover_events))
    return failures


def check_owner_count(expected, spans, events):
    """Failures for ``--expect-owner-count``.

    Two structural facts, both read straight from the trace: every
    migration span names exactly ``expected`` owner(s) of the tenant
    (the two-step handover guarantees exactly one — never zero, never
    two), and the handover journal balances: every ``handover.prepare``
    is resolved by exactly one ``handover.commit`` or
    ``handover.rollback``.
    """
    failures = []
    migrations = [s for s in spans if s.get("kind") == "migration"]
    if not migrations:
        return ["no migration span found for --expect-owner-count"]
    for span in migrations:
        owner = span.get("attrs", {}).get("owner")
        owners = 1 if owner else 0
        if owners != expected:
            failures.append(
                "migration %s names %d owner(s) (%r), expected %d"
                % (span.get("id"), owners, owner, expected))
    prepares = count_events(events, "handover.prepare")
    resolutions = (count_events(events, "handover.commit")
                   + count_events(events, "handover.rollback"))
    if prepares != resolutions:
        failures.append(
            "handover journal unbalanced: %d prepare(s) but %d "
            "commit/rollback resolution(s)" % (prepares, resolutions))
    return failures


def count_resumed_ok(spans):
    """Migrations that *completed* via journalled resume.

    A resumed attempt opens its own migration span tagged
    ``resumed=True``; only the ones that finished with outcome "ok"
    count -- a resume that parked again (or abandoned its journal)
    does not satisfy ``--expect-resumed``.
    """
    count = 0
    for span in spans:
        if span.get("kind") != "migration":
            continue
        attrs = span.get("attrs", {})
        if attrs.get("resumed") and attrs.get("outcome") == "ok":
            count += 1
    return count


def latest_event_attr(events, name, key):
    """The attribute of the last event named ``name`` (None if absent)."""
    value = None
    for event in events:
        if event.get("name") == name:
            value = event.get("attrs", {}).get(key)
    return value


def max_overlapping_faults(spans, events):
    """Largest number of fault windows active at one instant.

    Fault windows are the ``fault``-kind spans the injector records; an
    open end (a fault that never healed) extends to the end of the
    trace.  Windows that merely touch (one ends exactly when the next
    starts) do not count as overlapping.
    """
    fault_spans = [s for s in spans if s.get("kind") == "fault"]
    if not fault_spans:
        return 0
    horizon = 0.0
    for span in spans:
        horizon = max(horizon, span.get("start") or 0.0,
                      span.get("end") or 0.0)
    for event in events:
        horizon = max(horizon, event.get("time") or 0.0)
    deltas = []
    for span in fault_spans:
        end = span.get("end")
        deltas.append((span.get("start", 0.0), 1))
        deltas.append((horizon if end is None else end, -1))
    # close windows before opening new ones at the same instant, so
    # back-to-back faults are not miscounted as concurrent
    deltas.sort(key=lambda item: (item[0], item[1]))
    active = peak = 0
    for _time, delta in deltas:
        active += delta
        peak = max(peak, active)
    return peak


def parse_min_event(spec):
    """Parse one ``--min-event NAME:COUNT`` spec (COUNT defaults 1)."""
    name, sep, count = spec.partition(":")
    if not name:
        raise SystemExit("--min-event: empty event name in %r" % spec)
    if not sep:
        return name, 1
    try:
        return name, int(count)
    except ValueError:
        raise SystemExit("--min-event: bad count in %r" % spec)


def check_all_migrations_ok(spans):
    """Failures for ``--require-all-migrations-ok``.

    Every migration span in the trace — original attempts and
    journalled resumes alike — must have finished with outcome "ok".
    """
    failures = []
    migrations = [s for s in spans if s.get("kind") == "migration"]
    if not migrations:
        return ["no migration spans found for "
                "--require-all-migrations-ok"]
    for span in migrations:
        outcome = span.get("attrs", {}).get("outcome")
        if outcome != "ok":
            failures.append(
                "migration %s (%s) outcome is %r, expected 'ok'"
                % (span.get("id"),
                   span.get("attrs", {}).get("tenant", "?"), outcome))
    return failures


def check_file(path, args, tally=None):
    """Return a list of failures for one trace file.

    ``tally`` (optional) is a shared ``{record name: count}`` dict the
    caller threads through every file; both point events and spans
    count — rebalance.decide is a span, rebalance.submit an event.
    ``main`` checks the ``--min-event`` floors against the accumulated
    tally *after* every file has been read, so a floor can be satisfied
    by records spread across several traces.
    """
    failures = []
    meta, spans, events, metrics = index_trace(path)
    policy = meta.get("policy") or migration_attr(spans, "policy")
    if tally is not None:
        for record in events:
            name = record.get("name")
            if name:
                tally[name] = tally.get(name, 0) + 1
        for record in spans:
            name = record.get("name")
            if name:
                tally[name] = tally.get(name, 0) + 1

    if args.require_phase_order:
        failures.extend(check_phase_order(spans))

    # getattr so hand-built Namespace objects (tests) without the
    # newer flags keep working.
    if getattr(args, "require_all_migrations_ok", False):
        failures.extend(check_all_migrations_ok(spans))

    if args.min_fault_events is not None:
        injected = count_events(events, "fault.injected")
        if injected < args.min_fault_events:
            failures.append("fault.injected events = %d < required %d"
                            % (injected, args.min_fault_events))

    if args.expect_owner_count is not None:
        failures.extend(check_owner_count(args.expect_owner_count,
                                          spans, events))

    if args.min_overlapping_faults is not None:
        overlap = max_overlapping_faults(spans, events)
        if overlap < args.min_overlapping_faults:
            failures.append(
                "max overlapping fault windows = %d < required %d"
                % (overlap, args.min_overlapping_faults))

    if args.expect_resumed is not None:
        resumed = count_resumed_ok(spans)
        if resumed < args.expect_resumed:
            failures.append(
                "migrations completed via resume = %d < required %d"
                % (resumed, args.expect_resumed))

    if args.max_lost_commits is not None:
        lost = latest_event_attr(events, "soak.summary", "lost_commits")
        if lost is None:
            failures.append("no soak.summary event found for "
                            "--max-lost-commits")
        elif lost > args.max_lost_commits:
            failures.append("soak lost_commits = %s > allowed %d"
                            % (lost, args.max_lost_commits))

    max_lost_requests = getattr(args, "max_lost_requests", None)
    if max_lost_requests is not None:
        lost = latest_event_attr(events, "router.summary",
                                 "lost_requests")
        if lost is None:
            failures.append("no router.summary event found for "
                            "--max-lost-requests")
        elif lost > max_lost_requests:
            failures.append("router lost_requests = %s > allowed %d"
                            % (lost, max_lost_requests))
        phantoms = latest_event_attr(events, "router.summary",
                                     "phantom_increments")
        bound = latest_event_attr(events, "router.summary",
                                  "phantom_bound")
        if (phantoms is not None and bound is not None
                and phantoms > bound):
            failures.append("router phantom_increments = %s exceeds "
                            "the dropped-ack bound %s"
                            % (phantoms, bound))

    if args.expect_standby_dropped is not None:
        dropped = metric_value(metrics, "migration.standby_dropped")
        if dropped is None:
            dropped = count_events(events, "migration.standby_dropped")
        if dropped != args.expect_standby_dropped:
            failures.append("migration.standby_dropped = %s, expected %d"
                            % (dropped, args.expect_standby_dropped))

    if args.policy and policy != args.policy:
        # Baselines may legitimately abort (the paper's B-CON "N/A"
        # cells), so the outcome and floor checks only gate the
        # selected policy; phase order was still checked above.
        return policy, failures, True  # skipped by policy filter

    if args.expect_outcome is not None:
        failures.extend(check_outcome(args.expect_outcome, spans, events))
    elif (args.expect_resumed is None and args.max_lost_commits is None
          and max_lost_requests is None):
        # Soak and router traces legitimately record suspended /
        # abandoned attempts alongside the migrations that finished,
        # so the soak/router flags disable the single-migration
        # default gate.
        outcome = migration_attr(spans, "outcome")
        if outcome not in (None, "ok"):
            failures.append("migration outcome is %r, expected 'ok'"
                            % outcome)

    # Prefer the registry gauges; fall back to the migration span
    # attributes so the gate survives a metrics-less export.
    rounds = metric_value(metrics, "propagation.rounds")
    if rounds is None:
        rounds = migration_attr(spans, "rounds")
    players = metric_value(metrics, "propagation.players", key="max")
    if players is None:
        players = migration_attr(spans, "max_concurrent_players")

    if args.min_rounds is not None:
        if rounds is None:
            failures.append("propagation.rounds missing from trace")
        elif rounds < args.min_rounds:
            failures.append("propagation.rounds = %s < required %d"
                            % (rounds, args.min_rounds))
    if args.min_players is not None:
        if players is None:
            failures.append(
                "propagation.max_concurrent_players missing from trace")
        elif players < args.min_players:
            failures.append(
                "max_concurrent_players = %s < required %d"
                % (players, args.min_players))
    return policy, failures, False


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Gate CI on migration trace artifacts.")
    parser.add_argument("traces", nargs="+", metavar="TRACE",
                        help="trace JSONL files to check")
    parser.add_argument("--policy", default=None,
                        help="apply the rounds/players floors only to "
                             "traces with this policy (e.g. Madeus); "
                             "phase order is checked everywhere")
    parser.add_argument("--min-rounds", type=int, default=None,
                        help="minimum propagation.rounds")
    parser.add_argument("--min-players", type=int, default=None,
                        help="minimum propagation.max_concurrent_players")
    parser.add_argument("--require-phase-order", action="store_true",
                        help="fail unless every migration's phases are "
                             "dump/restore/catch-up/handover in order")
    parser.add_argument("--expect-outcome", default=None,
                        choices=["ok", "aborted", "failover"],
                        help="required migration outcome: 'ok' (no "
                             "failover), 'aborted', or 'failover' "
                             "(completed on a promoted standby)")
    parser.add_argument("--min-fault-events", type=int, default=None,
                        help="minimum number of fault.injected trace "
                             "events (chaos runs)")
    parser.add_argument("--expect-standby-dropped", type=int,
                        default=None,
                        help="exact migration.standby_dropped count")
    parser.add_argument("--expect-owner-count", type=int, default=None,
                        help="owners each migration span must name "
                             "(the two-step handover guarantees 1), "
                             "and require the handover journal to "
                             "balance prepares against resolutions")
    parser.add_argument("--expect-resumed", type=int, default=None,
                        help="minimum number of migrations that "
                             "completed via journalled resume "
                             "(migration spans tagged resumed=true "
                             "with outcome ok); also disables the "
                             "default first-migration outcome gate")
    parser.add_argument("--max-lost-commits", type=int, default=None,
                        help="maximum lost_commits the trace's final "
                             "soak.summary event may report (soak "
                             "runs; 0 = none); also disables the "
                             "default first-migration outcome gate")
    parser.add_argument("--max-lost-requests", type=int, default=None,
                        help="maximum lost_requests the trace's final "
                             "router.summary event may report (router "
                             "runs; 0 = every acknowledged request "
                             "survived); also checks phantom "
                             "increments against the dropped-ack "
                             "bound and disables the default "
                             "first-migration outcome gate")
    parser.add_argument("--min-event", action="append", default=None,
                        metavar="NAME[:COUNT]",
                        help="require at least COUNT (default 1) "
                             "trace records (events or spans) with "
                             "this name, counted across ALL trace "
                             "files passed; repeatable (e.g. "
                             "--min-event rebalance.submit:1)")
    parser.add_argument("--require-all-migrations-ok",
                        action="store_true",
                        help="every migration span in the trace must "
                             "have outcome 'ok' (rebalance runs)")
    parser.add_argument("--min-overlapping-faults", type=int,
                        default=None,
                        help="minimum number of fault windows that "
                             "must be active at one instant (multi-"
                             "fault chaos runs)")
    args = parser.parse_args(argv)

    exit_code = 0
    gated = 0
    tally = {}
    for path in args.traces:
        policy, failures, skipped = check_file(path, args, tally)
        label = "%s [%s]" % (path, policy or "?")
        if failures:
            exit_code = 1
            print("FAIL %s" % label)
            for failure in failures:
                print("  - %s" % failure)
        elif skipped:
            print("pass %s (policy floors not applied)" % label)
        else:
            gated += 1
            print("PASS %s" % label)
    # The --min-event floors gate the *accumulated* counts, so a floor
    # can be met by records spread across several trace files.
    for spec in args.min_event or []:
        name, minimum = parse_min_event(spec)
        count = tally.get(name, 0)
        if count < minimum:
            exit_code = 1
            observed = ", ".join(sorted(tally)) or "none"
            print("FAIL --min-event %s: %d record(s) across %d trace "
                  "file(s) < required %d (observed record names: %s)"
                  % (name, count, len(args.traces), minimum, observed))
    if args.policy and not gated and exit_code == 0:
        print("FAIL: no trace matched --policy %s" % args.policy)
        exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
