#!/usr/bin/env python3
"""Profile a seeded experiment and print the hottest call sites.

A thin cProfile/pstats wrapper around the repro experiments, for
answering "where does the simulation actually spend its time?" before
touching the kernel.  Prints the top cumulative-time entries (default
20) and can dump the raw stats for ``snakeviz``/``pstats`` follow-up.

Usage::

    python scripts/profile_sim.py                       # fig6 @ smoke
    python scripts/profile_sim.py --experiment fig5 --profile quick
    python scripts/profile_sim.py --sort tottime --top 40
    python scripts/profile_sim.py --out /tmp/fig6.pstats

Run from the repository root (the script puts ``src/`` on ``sys.path``
itself, so no ``PYTHONPATH`` needed).
"""

import argparse
import cProfile
import os
import pstats
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

#: Experiments worth profiling, mapped to their runner modules.
EXPERIMENTS = ("fig5", "fig6", "fig7", "fig8", "fig9", "bench",
               "multitenant", "pingpong")


def _runner(experiment, profile_name, seed):
    """Build a zero-argument callable executing the chosen experiment."""
    from repro.experiments import get_profile

    if experiment == "pingpong":
        # The pure-kernel microbench: no engine, no middleware — the
        # profile to read before touching repro.sim.core itself.
        from repro.sim.core import Environment

        def run():
            env = Environment()

            def ping(env):
                for _i in range(200_000):
                    yield env.timeout(1)
            env.process(ping(env))
            env.process(ping(env))
            env.run()
        return run

    profile = get_profile(profile_name)
    if experiment == "bench":
        from repro.experiments import bench

        def run():
            bench.run(profile, seed=seed,
                      bench_dir=os.path.join("benchmarks", "results",
                                             "profile-bench"))
        return run

    from repro.experiments import (dbsize, migration_time, multitenant,
                                   performance, preliminary)
    modules = {
        "fig5": preliminary,
        "fig6": migration_time,
        "fig7": performance,
        "fig8": performance,
        "fig9": dbsize,
        "multitenant": multitenant,
    }
    module = modules[experiment]

    def run():
        module.run(profile, seed=seed)
    return run


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="cProfile one experiment and print the hotspots.")
    parser.add_argument("--experiment", default="fig6",
                        choices=EXPERIMENTS,
                        help="what to profile (default: fig6; "
                             "'pingpong' is the bare kernel loop)")
    parser.add_argument("--profile", default="smoke",
                        choices=["paper", "quick", "smoke"],
                        help="experiment scale (default: smoke)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the profile's root random seed")
    parser.add_argument("--top", type=int, default=20,
                        help="number of entries to print (default: 20)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="pstats sort order (default: cumulative)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also dump raw cProfile stats here")
    args = parser.parse_args(argv)

    run = _runner(args.experiment, args.profile, args.seed)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        run()
    finally:
        profiler.disable()

    if args.out is not None:
        profiler.dump_stats(args.out)
        print("raw stats written to %s" % args.out)
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
